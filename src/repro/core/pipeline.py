"""The end-to-end PURPLE pipeline (Figure 3).

``Purple.fit`` trains the two PLM substrates on the demonstration corpus
and builds the four-level automaton; ``Purple.translate`` runs the full
loop for one task: prune → predict skeletons → select demonstrations →
pack prompt → call the LLM (n samples) → adapt → vote → repair (when
``repair_rounds`` > 0; docs/repair.md).

Every module can be switched off for the Table-6 ablations via
:class:`~repro.core.config.PurpleConfig`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.api.registry import register
from repro.core.adaption import DatabaseAdapter
from repro.core.automaton import AutomatonIndex
from repro.core.config import RETRIEVAL_MODES, PurpleConfig
from repro.core.consistency import consistency_vote
from repro.core.prompt import PromptBuilder
from repro.core.pruning import SchemaPruner
from repro.core.selection import select_demonstrations
from repro.core.skeleton_prediction import (
    PredictedSkeleton,
    SkeletonPredictionModule,
)
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.eval.timing import stage
from repro.llm.degrade import best_effort_sql, retries_so_far, run_ladder
from repro.llm.interface import LLM, LLMRequest
from repro.llm.promptfmt import build_prompt, render_schema
from repro.obs import runtime as obs
from repro.plm.classifier import train_schema_classifier
from repro.repair import RepairBudget, RepairLoop
from repro.plm.skeleton_model import train_skeleton_predictor
from repro.schema import make_executor
from repro.spider.dataset import Dataset
from repro.sqlkit.skeleton import skeleton_tokens
from repro.utils.rng import derive_rng, stable_hash


class Purple:
    """PURPLE: Pre-trained models Utilized to Retrieve Prompts for
    Logical Enhancement."""

    #: How many rungs of the degradation ladder a caller may skip when
    #: entering ``translate`` demoted (the serving layer's load
    #: shedding): 2 = straight to the zero-shot rung.
    max_demotion = 2

    def __init__(self, llm: LLM, config: Optional[PurpleConfig] = None):
        self.llm = llm
        self.config = config or PurpleConfig()
        if self.config.retrieval not in RETRIEVAL_MODES:
            raise ValueError(
                f"unknown retrieval mode {self.config.retrieval!r}; "
                f"choose from {RETRIEVAL_MODES}"
            )
        self.name = f"PURPLE({llm.name})"
        self.executor = make_executor(self.config.dialect)
        self.adapter = DatabaseAdapter(
            self.executor,
            max_attempts=self.config.max_repair_attempts,
            map_functions=self.config.map_functions,
            dialect=self.config.dialect,
        )
        # The repair budget is run-wide: one ledger shared by every
        # worker translating through this instance (docs/repair.md).
        self.repair_budget = RepairBudget(self.config.repair_token_budget)
        self.repair: Optional[RepairLoop] = None
        if self.config.repair_rounds > 0:
            self.repair = RepairLoop(
                llm=llm,
                executor=self.executor,
                adapter=self.adapter,
                max_rounds=self.config.repair_rounds,
                budget=self.repair_budget,
            )
        self.classifier = None
        self.pruner: Optional[SchemaPruner] = None
        self.skeleton_module: Optional[SkeletonPredictionModule] = None
        self.automaton: Optional[AutomatonIndex] = None
        self.store = None  # repro.store.DemoStore on the warm-start path
        self.retrieval_index = None  # repro.retrieval.EmbeddingIndex
        self.index_stats: dict = {}
        self.prompt_builder: Optional[PromptBuilder] = None
        self.oracle_skeletons: dict = {}

    # -- training ---------------------------------------------------------------

    def fit(self, demo_pool: Dataset) -> "Purple":
        """Train substrates and index the demonstration pool."""
        cfg = self.config
        self.classifier = train_schema_classifier(
            demo_pool, epochs=cfg.classifier_epochs, seed=cfg.seed
        )
        self.pruner = SchemaPruner(
            classifier=self.classifier,
            tau_p=cfg.tau_p,
            tau_n=cfg.tau_n,
            use_steiner=cfg.use_steiner,
            steiner_method=cfg.steiner_method,
        )
        predictor = train_skeleton_predictor(
            demo_pool, epochs=cfg.skeleton_epochs, seed=cfg.seed
        )
        self.skeleton_module = SkeletonPredictionModule(
            predictor=predictor, top_k=cfg.top_k_skeletons
        )
        self._index_pool(demo_pool)
        self.prompt_builder = PromptBuilder(
            demo_pool, values_per_column=cfg.values_per_column
        )
        return self

    def _index_pool(self, demo_pool: Dataset) -> None:
        """Index the demonstration pool, warm-starting when configured.

        With :attr:`PurpleConfig.store_path` set, the four-level
        automaton comes from the persistent demonstration store — built
        once offline (or on first use), loaded without SQL parsing, and
        shared read-only across every worker and pipeline instance in
        the process.  Without it, the index is rebuilt from raw SQL
        (the original cold path).  When :attr:`PurpleConfig.retrieval`
        is not ``"off"``, the embedding index of docs/retrieval.md is
        built (or loaded from the store's retrieval section) alongside;
        with retrieval off no embedding code runs at all.  Either way
        ``index_stats`` records what happened so the evaluation harness
        can surface it.
        """
        cfg = self.config
        demo_sqls = [ex.sql for ex in demo_pool]
        questions = None
        if cfg.retrieval != "off":
            questions = [ex.question for ex in demo_pool]
        started = time.perf_counter()
        if cfg.store_path is not None:
            from repro.store import shared_store

            self.store = shared_store(
                cfg.store_path,
                demo_sqls,
                offline=cfg.offline_index,
                questions=questions,
                retrieval_config=(
                    {"dim": cfg.retrieval_dim, "probes": cfg.retrieval_probes}
                    if questions is not None
                    else None
                ),
            )
            self.automaton = self.store.index
            # A store file may carry an embedding section the config
            # does not ask for; with retrieval off it stays inert so
            # the pipeline is byte-identical to a pre-retrieval build.
            if cfg.retrieval != "off":
                self.retrieval_index = self.store.retrieval
            source = "warm"
        else:
            with obs.span("index.build"):
                self.automaton = AutomatonIndex.build(demo_sqls)
            obs.count("index.builds")
            obs.observe(
                "index.build_ms", (time.perf_counter() - started) * 1000.0
            )
            if questions is not None:
                self.retrieval_index = self._build_retrieval(
                    questions, demo_sqls
                )
            source = "cold"
        self.index_stats = {
            "source": source,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "pool_size": len(demo_sqls),
            "states": self.automaton.end_state_counts(),
        }
        if self.retrieval_index is not None:
            self.index_stats["retrieval"] = {
                "mode": cfg.retrieval,
                "dim": self.retrieval_index.dim,
                "probes": self.retrieval_index.probes,
                "vectors": len(self.retrieval_index),
            }

    def _build_retrieval(self, questions: list, demo_sqls: list):
        """Cold-build the embedding index for the retrieval tier."""
        from repro.retrieval import EmbeddingIndex

        cfg = self.config
        started = time.perf_counter()
        with obs.span("retrieval.build"):
            retrieval = EmbeddingIndex.build(
                (
                    (question, tuple(skeleton_tokens(sql)))
                    for question, sql in zip(questions, demo_sqls)
                ),
                dim=cfg.retrieval_dim,
                probes=cfg.retrieval_probes,
            )
        obs.count("retrieval.builds")
        obs.observe(
            "retrieval.build_ms", (time.perf_counter() - started) * 1000.0
        )
        return retrieval

    # -- inference ----------------------------------------------------------------

    def translate(
        self, task: TranslationTask, *, min_rung: int = 0
    ) -> TranslationResult:
        """Translate one NL question to SQL.

        ``min_rung`` enters the degradation ladder below the top — rung
        1 skips the full prompt, rung 2 goes straight to zero-shot.
        The default (0) is byte-identical to the pre-demotion pipeline;
        the serving layer uses positive values to shed load without
        dropping requests (docs/serving.md).
        """
        assert self.prompt_builder is not None, "call fit() first"
        min_rung = max(0, min(min_rung, self.max_demotion))
        cfg = self.config
        rng = derive_rng(
            cfg.seed, "purple", task.db_id, stable_hash(task.question)
        )

        # Step 1 — schema pruning.
        with stage("prune"):
            if cfg.use_pruning:
                schema = self.pruner.prune(task.question, task.database)
            else:
                schema = task.database.schema
            schema_text = render_schema(
                task.database, schema, values_per_column=cfg.values_per_column
            )

        # Step 2 — skeleton prediction (or the oracle override).
        with stage("skeleton"):
            skeletons = self._predict_skeletons(task, schema)

        # Step 3 — demonstration selection.  A request demoted straight
        # to the zero-shot rung never packs demonstrations, so shed
        # requests skip the retrieval work entirely — that saved compute
        # is the point of demotion.
        with stage("select"):
            if cfg.use_selection and skeletons and min_rung < self.max_demotion:
                if cfg.retrieval != "off" and self.retrieval_index is not None:
                    demo_order = self._select_with_retrieval(
                        task, skeletons, rng
                    )
                else:
                    demo_order = select_demonstrations(
                        self.automaton, skeletons, cfg, rng=rng
                    )
            else:
                demo_order = []

        # Step 3b — generation-based prompting (§VII future work): when
        # retrieval found nothing at the fine-grained levels, synthesize a
        # demonstration by instantiating the predicted skeleton over the
        # task's own schema.
        extra_blocks = []
        if cfg.use_synthesis and skeletons and min_rung < self.max_demotion:
            top = skeletons[0]
            if not self.automaton.match(1, top.tokens) and not self.automaton.match(
                2, top.tokens
            ):
                from repro.core.synthesis import synthesize_sql
                from repro.llm.promptfmt import render_demo

                synthetic = synthesize_sql(
                    top.tokens, schema, task.database, executor=self.executor
                )
                if synthetic is not None:
                    extra_blocks.append(
                        render_demo(schema_text, task.question, synthetic)
                    )

        # Step 4 — prompt assembly and the LLM call, walked down the
        # degradation ladder: the full prompt first (the exact request a
        # fault-free run makes), then fewer demonstrations at half the
        # budget (the only fix for a truncated completion), then
        # zero-shot.  Later rungs build their prompts lazily, so the
        # happy path is bit-identical to a ladder-free call.  A demoted
        # request (``min_rung`` > 0) enters the same ladder below the
        # top — skipped rungs never build their prompts at all.
        prompt = None
        if min_rung == 0:
            prompt = self.prompt_builder.build(
                task.question,
                schema_text,
                demo_order,
                budget=cfg.input_budget,
                rng=rng,
                extra_blocks=extra_blocks,
            )

        def _half_budget_request() -> LLMRequest:
            reduced = self.prompt_builder.build(
                task.question,
                schema_text,
                demo_order,
                budget=max(cfg.input_budget // 2, 256),
                rng=derive_rng(
                    cfg.seed, "degrade", task.db_id, stable_hash(task.question)
                ),
            )
            return LLMRequest(prompt=reduced, n=cfg.consistency_n)

        def _zero_shot_request() -> LLMRequest:
            return LLMRequest(
                prompt=build_prompt(schema_text, task.question),
                n=cfg.consistency_n,
            )

        rungs = [
            lambda: LLMRequest(prompt=prompt, n=cfg.consistency_n),
            _half_budget_request,
            _zero_shot_request,
        ]
        retries_before = retries_so_far(self.llm)
        with stage("llm"):
            outcome = run_ladder(
                self.llm, rungs[min_rung:], first_rung=min_rung
            )
        retries = retries_so_far(self.llm) - retries_before
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(schema),
                usage=TokenUsage(),
                degradation_level=outcome.level,
                retries=retries,
                best_effort=True,
                events=outcome.events,
            )
        response = outcome.response

        # Step 5 — database adaption (repairs) and consistency voting.
        # Hallucinations are systematic per prompt, so without the repairs
        # the whole vote pool shares the defect — which is exactly why the
        # paper's -Database Adaption ablation costs mostly EX.
        with stage("adapt"):
            if cfg.use_adaption:
                candidates = [
                    self.adapter.adapt(text, task.database).sql
                    for text in response.texts
                ]
            else:
                candidates = list(response.texts)
            final = consistency_vote(candidates, self.executor, task.database)

        usage = TokenUsage(
            prompt_tokens=response.prompt_tokens,
            output_tokens=response.output_tokens,
            calls=1,
        )

        # Step 6 — execution-feedback repair (docs/repair.md).  Only when
        # configured on: the vote can still elect a failing query when
        # every candidate shares a systematic hallucination.  Placed
        # after the ladder's best-effort early return above, so repair
        # never runs once the ladder is exhausted.  With repair_rounds=0
        # this block is skipped entirely — no extra executor, LLM, or
        # observability calls — keeping outcomes and traces byte-identical
        # to a loop-free build.
        repair_rounds_used = 0
        repaired = False
        if self.repair is not None:
            with stage("repair"):
                compact_schema_text = render_schema(
                    task.database, schema, values_per_column=0
                )
                report = self.repair.run(
                    final,
                    task.database,
                    schema_text=schema_text,
                    compact_schema_text=compact_schema_text,
                    question=task.question,
                )
            final = report.sql
            usage.add(report.usage)
            repair_rounds_used = report.rounds
            repaired = report.repaired

        return TranslationResult(
            sql=final,
            usage=usage,
            degradation_level=outcome.level,
            retries=retries,
            events=outcome.events,
            repair_rounds=repair_rounds_used,
            repaired=repaired,
        )

    def _select_with_retrieval(self, task, skeletons, rng) -> list:
        """Selection with the embedding pre-filter (docs/retrieval.md).

        The embedding index proposes ``retrieval_candidates`` demos
        near (question, top predicted skeleton) — the recall-only LSH
        tier, no exact scoring; Algorithm 1 then runs with its
        abstraction-level matches restricted to that set (the
        skeleton-faithful levels are exempt — see
        ``select_demonstrations``).
        An empty filtered selection falls back to the unfiltered run —
        the pre-filter may only narrow a non-empty selection, never
        erase one.  In ``fused`` mode the surviving order is re-ranked
        by similarity × rank.
        """
        cfg = self.config
        top = skeletons[0]
        with obs.span("retrieval.select", mode=cfg.retrieval):
            proposed = self.retrieval_index.candidates(
                task.question, top.tokens, cfg.retrieval_candidates
            )
            obs.count("retrieval.queries")
            obs.observe("retrieval.candidates", len(proposed))
            demo_order = select_demonstrations(
                self.automaton,
                skeletons,
                cfg,
                rng=rng,
                candidates=frozenset(proposed),
            )
            if not demo_order:
                obs.count("retrieval.fallbacks")
                demo_order = select_demonstrations(
                    self.automaton, skeletons, cfg, rng=rng
                )
            if cfg.retrieval == "fused" and demo_order:
                from repro.retrieval import fused_order

                sims = self.retrieval_index.similarities(
                    task.question, top.tokens, demo_order
                )
                demo_order = fused_order(demo_order, sims)
                obs.count("retrieval.fused_reranks")
        return demo_order

    # -- capabilities (repro.api.explain / repro.api.health) -----------------------

    def explain(self, task: TranslationTask, sql: Optional[str] = None) -> dict:
        """Static diagnostics plus retrieval provenance for one task.

        Runs the LLM-free front half of the pipeline — prune, skeleton
        prediction, demonstration selection — and reports what each
        stage decided: the pruned tables, the predicted skeletons with
        probabilities, and the selected demonstrations with the
        automaton level that matched them.  With ``sql`` given, the
        schema-aware analyzer (:mod:`repro.analysis.sqlcheck`) checks it
        against the task database and its diagnostics ride along.
        Never calls the LLM.
        """
        assert self.prompt_builder is not None, "call fit() first"
        from repro.analysis import analyze_sql

        cfg = self.config
        rng = derive_rng(
            cfg.seed, "purple", task.db_id, stable_hash(task.question)
        )
        if cfg.use_pruning:
            schema = self.pruner.prune(task.question, task.database)
        else:
            schema = task.database.schema
        skeletons = self._predict_skeletons(task, schema)
        demo_order = []
        if cfg.use_selection and skeletons:
            demo_order = select_demonstrations(
                self.automaton, skeletons, cfg, rng=rng
            )
        # Finest automaton level (1=detail .. 4=clause) at which each
        # selected demonstration matched any predicted skeleton — the
        # provenance the explain endpoint exposes.
        def _match_level(index: int):
            for level in (1, 2, 3, 4):
                for s in skeletons:
                    if index in self.automaton.match(level, s.tokens):
                        return level
            return None

        pool = self.prompt_builder.demo_pool.examples
        demonstrations = tuple(
            {
                "index": int(i),
                "db_id": pool[i].db_id,
                "sql": pool[i].sql,
                "skeleton": " ".join(skeleton_tokens(pool[i].sql)),
                "level": _match_level(int(i)),
            }
            for i in demo_order[: cfg.top_k_skeletons * 4]
            if 0 <= i < len(pool)
        )
        diagnostics = tuple(
            d.as_dict()
            for d in (analyze_sql(sql, task.database.schema) if sql else ())
        )
        return {
            "db_id": task.db_id,
            "pruned_tables": tuple(t.name for t in schema.tables),
            "skeletons": tuple(
                {
                    "tokens": " ".join(s.tokens),
                    "probability": round(float(s.probability), 6),
                }
                for s in skeletons
            ),
            "demonstrations": demonstrations,
            "diagnostics": diagnostics,
            "sql": sql or "",
        }

    def health(self) -> dict:
        """Liveness/fitness self-report for the serving layer."""
        fitted = self.prompt_builder is not None
        report = {
            "status": "ok" if fitted else "unfitted",
            "approach": self.name,
            "fitted": fitted,
            "repair_rounds": self.config.repair_rounds,
        }
        if self.index_stats:
            report["index"] = dict(self.index_stats)
        return report

    def _predict_skeletons(self, task: TranslationTask, schema) -> list:
        oracle = self.oracle_skeletons.get((task.db_id, task.question))
        if oracle is not None:
            return [PredictedSkeleton(tokens=tuple(oracle), probability=1.0)]
        return self.skeleton_module.predict(task.question, schema)

    # -- oracle support (Table 6, "+Oracle Skeleton") -------------------------------

    def set_oracle_skeletons(self, dataset: Dataset) -> None:
        """Install gold skeletons for the oracle-setting experiment."""
        self.oracle_skeletons = {
            (ex.db_id, ex.question): tuple(skeleton_tokens(ex.sql))
            for ex in dataset
        }

    def close(self) -> None:
        """Release the underlying SQLite resources."""
        self.executor.close()


@register("purple", capabilities=("explain", "demote"))
def _make_purple(*, llm=None, train=None, budget=None, consistency_n=None,
                 seed=None, config=None, **overrides):
    """Build PURPLE; shared knobs map onto :class:`PurpleConfig` fields.

    Pass ``config=PurpleConfig(...)`` to take full control (the shared
    knobs must then be omitted), or pass any ``PurpleConfig`` field as a
    keyword override — notably ``store_path=`` to warm-start the
    demonstration index from a persistent store and
    ``offline_index=True`` to forbid implicit rebuilds of a stale one
    (see docs/demo-store.md).
    """
    if config is not None:
        if budget is not None or consistency_n is not None or seed is not None:
            raise TypeError(
                "pass either config= or the budget/consistency_n/seed "
                "knobs, not both"
            )
        if overrides:
            raise TypeError(
                "config= and field overrides are mutually exclusive"
            )
    else:
        if budget is not None:
            overrides["input_budget"] = budget
        if consistency_n is not None:
            overrides["consistency_n"] = consistency_n
        if seed is not None:
            overrides["seed"] = seed
        config = PurpleConfig(**overrides)
    approach = Purple(llm, config)
    return approach.fit(train) if train is not None else approach
