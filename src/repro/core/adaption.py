"""Database adaption (§IV-D1): repair the six hallucination error classes.

Repairs run **only** on SQL that fails to execute, so valid queries are
never perturbed ("the SQL adaption strategy does not introduce undesired
side effects to the valid SQL").  A failing query gets up to
``max_attempts`` repair rounds.

Each round is *diagnosis-directed*: the static analyzer
(:mod:`repro.analysis.sqlcheck`) maps the failure to its hallucination
class, and the matching fixer runs first.  When the diagnosis is empty
or its fixer does not apply, the round falls back to probing the
remaining fixers in canonical order — the original behaviour, kept as a
safety net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.diagnostics import record_diagnostics
from repro.analysis.dialects import DialectAnalyzer
from repro.analysis.sqlcheck import SQLAnalyzer
from repro.obs import runtime as obs
from repro.schema import Database, SchemaGraph, SQLiteExecutor
from repro.sqlkit.ast_nodes import (
    Agg,
    BinaryOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    JoinedTable,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
    walk,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.render import render_sql
from repro.utils.text import edit_distance


@dataclass
class RepairOutcome:
    """What happened to one candidate SQL.

    ``diagnosed`` lists the analyzer rule ids that drove the repair
    rounds (empty when every fix came from the fallback probe).
    """

    sql: str
    repaired: bool = False
    attempts: int = 0
    fixes: tuple = ()
    diagnosed: tuple = ()


class DatabaseAdapter:
    """Adapts LLM output to the target database schema and dialect.

    ``map_functions=True`` enables the paper's stated future-work upgrade
    of the Function-Hallucination repair: instead of omitting an
    unsupported function call, translate it to the target dialect
    (``CONCAT(a, b)`` → SQLite's ``a || b``).
    """

    def __init__(
        self,
        executor: SQLiteExecutor,
        max_attempts: int = 5,
        map_functions: bool = False,
        dialect: str = "sqlite",
    ):
        self.executor = executor
        self.max_attempts = max_attempts
        self.map_functions = map_functions
        self.dialect = dialect
        self._analyzers: dict = {}

    def _analyzer(self, database: Database) -> SQLAnalyzer:
        analyzer = self._analyzers.get(database.db_id)
        if analyzer is None:
            if self.dialect == "sqlite":
                analyzer = SQLAnalyzer(database.schema)
            else:
                analyzer = DialectAnalyzer(
                    database.schema, dialect=self.dialect
                )
            self._analyzers[database.db_id] = analyzer
        return analyzer

    def diagnose(self, sql: str, database: Database) -> list:
        """Static diagnostics for ``sql`` against ``database``'s schema."""
        return self._analyzer(database).analyze(sql)

    def adapt(self, sql: str, database: Database) -> RepairOutcome:
        """Repair ``sql`` against ``database`` if (and only if) it fails."""
        key = self.executor.register(database)
        if self.executor.execute(key, sql).ok:
            return RepairOutcome(sql=sql)
        fixes: list = []
        diagnosed: list = []
        current = sql
        for attempt in range(1, self.max_attempts + 1):
            fixed = self._apply_one_fix(current, database, diagnosed)
            if fixed is None or fixed == current:
                return RepairOutcome(
                    sql=current, repaired=False, attempts=attempt,
                    fixes=tuple(fixes), diagnosed=tuple(diagnosed),
                )
            current, fix_name = fixed
            fixes.append(fix_name)
            if self.executor.execute(key, current).ok:
                return RepairOutcome(
                    sql=current, repaired=True, attempts=attempt,
                    fixes=tuple(fixes), diagnosed=tuple(diagnosed),
                )
        return RepairOutcome(
            sql=current, repaired=False, attempts=self.max_attempts,
            fixes=tuple(fixes), diagnosed=tuple(diagnosed),
        )

    # -- one repair round ------------------------------------------------------------

    def _apply_one_fix(
        self, sql: str, database: Database, diagnosed: list
    ) -> Optional[tuple]:
        try:
            query = parse_sql(sql)
        except SQLError:
            return None
        diagnostics = self.diagnose(sql, database)
        record_diagnostics(diagnostics)
        classes = {
            d.error_class for d in diagnostics if d.error_class is not None
        }
        directed = [name for name, _ in _FIXERS if name in classes]
        probed = [name for name, _ in _FIXERS if name not in classes]
        fixer_by_name = dict(_FIXERS)
        for phase, names in (("directed", directed), ("probed", probed)):
            for name in names:
                mutated = self._run_fixer(fixer_by_name[name], name, query,
                                          database)
                if mutated is not None:
                    if phase == "directed":
                        diagnosed.extend(
                            d.rule for d in diagnostics
                            if d.error_class == name
                        )
                    obs.count("adaption.fix", mode=phase)
                    return render_sql(mutated), name
        return None

    def _run_fixer(self, fixer, name: str, query, database: Database):
        if name == "function_hallucination":
            return fixer(query, database, map_functions=self.map_functions)
        return fixer(query, database)


# ---------------------------------------------------------------------------
# Fixers.  Each inspects the AST against the real schema and returns a fixed
# query, or None when its error class is not present.
# ---------------------------------------------------------------------------


def _bindings(core: SelectCore) -> dict:
    """binding (alias or name, lowercase) -> table name for one core."""
    bindings = {}
    if core.from_clause is None:
        return bindings
    for source in core.from_clause.sources():
        if isinstance(source, TableRef):
            bindings[source.binding()] = source.name.lower()
    return bindings


def fix_function_hallucination(
    query: Query, database: Database, map_functions: bool = False
) -> Optional[Query]:
    """CONCAT and friends are unsupported in SQLite.

    Default behaviour follows §IV-D1's "immediate solution": keep the
    first column argument and omit the call.  With ``map_functions`` the
    paper's future-work upgrade applies instead: translate the call to the
    target dialect (``CONCAT(a, b)`` → ``a || b``).
    """
    changed = False
    for core in _all_cores(query):
        for item in core.items:
            if not isinstance(item.expr, FuncCall):
                continue
            if map_functions and item.expr.name == "CONCAT" and item.expr.args:
                mapped = item.expr.args[0]
                for arg in item.expr.args[1:]:
                    mapped = BinaryOp(op="||", left=mapped, right=arg)
                item.expr = mapped
                changed = True
                continue
            replacement = next(
                (a for a in item.expr.args if isinstance(a, ColumnRef)),
                item.expr.args[0] if item.expr.args else None,
            )
            if replacement is not None:
                item.expr = replacement
                changed = True
    return query if changed else None


def fix_aggregation_hallucination(query: Query, database: Database) -> Optional[Query]:
    """COUNT(DISTINCT a, b) → COUNT(DISTINCT a), COUNT(DISTINCT b)."""
    for core in _all_cores(query):
        for i, item in enumerate(core.items):
            expr = item.expr
            if isinstance(expr, Agg) and len(expr.args) > 1:
                extra_items = [
                    SelectItem(
                        expr=Agg(func=expr.func, args=[arg], distinct=expr.distinct)
                    )
                    for arg in expr.args[1:]
                ]
                expr.args = expr.args[:1]
                core.items[i + 1 : i + 1] = extra_items
                return query
    return None


def fix_table_column_mismatch(query: Query, database: Database) -> Optional[Query]:
    """A qualified column pointing at a table that lacks it — re-point it
    at the in-scope table that has it."""
    schema = database.schema
    changed = False
    for core in _all_cores(query):
        bindings = _bindings(core)
        for node in _scope_nodes(core):
            if not isinstance(node, ColumnRef) or not node.table:
                continue
            table = bindings.get(node.table.lower())
            if table is None or not schema.has_table(table):
                continue
            if schema.table(table).has_column(node.column):
                continue
            for binding, other in bindings.items():
                if schema.has_table(other) and schema.table(other).has_column(
                    node.column
                ):
                    node.table = _binding_token(core, binding)
                    changed = True
                    break
    return query if changed else None


def fix_column_ambiguity(query: Query, database: Database) -> Optional[Query]:
    """An unqualified column present in several FROM tables — qualify it."""
    schema = database.schema
    changed = False
    for core in _all_cores(query):
        bindings = _bindings(core)
        if len(bindings) < 2:
            continue
        for node in _scope_nodes(core):
            if not isinstance(node, ColumnRef) or node.table:
                continue
            holders = [
                b
                for b, t in bindings.items()
                if schema.has_table(t) and schema.table(t).has_column(node.column)
            ]
            if len(holders) >= 2:
                node.table = _binding_token(core, sorted(holders)[0])
                changed = True
    return query if changed else None


def fix_missing_table(query: Query, database: Database) -> Optional[Query]:
    """A referenced column belongs to a table absent from FROM — join that
    table in along the foreign-key path."""
    schema = database.schema
    graph = SchemaGraph(schema)
    for core in _all_cores(query):
        bindings = _bindings(core)
        if core.from_clause is None or not bindings:
            continue
        in_scope = set(bindings.values())
        for node in _scope_nodes(core):
            if not isinstance(node, ColumnRef) or node.table:
                continue
            if any(
                schema.has_table(t) and schema.table(t).has_column(node.column)
                for t in in_scope
            ):
                continue
            owners = [t.key for t in schema.tables_with_column(node.column)]
            if not owners:
                continue
            anchor = next(iter(in_scope))
            paths = [(graph.join_path(anchor, o), o) for o in owners]
            paths = [(p, o) for p, o in paths if p]
            if not paths:
                continue
            path, owner = min(paths, key=lambda po: len(po[0]))
            _extend_joins(core, path, schema, graph)
            node.table = owner
            return query
    return None


def fix_schema_hallucination(query: Query, database: Database) -> Optional[Query]:
    """A column that exists nowhere — substitute the minimal-edit-distance
    column of the in-scope tables."""
    schema = database.schema
    for core in _all_cores(query):
        bindings = _bindings(core)
        in_scope = [t for t in bindings.values() if schema.has_table(t)]
        if not in_scope:
            continue
        for node in _scope_nodes(core):
            if not isinstance(node, ColumnRef):
                continue
            if any(schema.table(t).has_column(node.column) for t in in_scope):
                continue
            if any(
                t.has_column(node.column) for t in schema.tables
            ):
                continue  # exists elsewhere: that's Missing-Table's job
            candidates = [
                (edit_distance(node.column.lower(), col.key), t, col.name)
                for t in in_scope
                for col in schema.table(t).columns
            ]
            if not candidates:
                continue
            _, table, column = min(candidates)
            node.column = column
            if node.table is None and len(bindings) > 1:
                node.table = _binding_for_table(core, table)
            return query
    return None


_FIXERS = (
    ("function_hallucination", fix_function_hallucination),
    ("aggregation_hallucination", fix_aggregation_hallucination),
    ("table_column_mismatch", fix_table_column_mismatch),
    ("column_ambiguity", fix_column_ambiguity),
    ("missing_table", fix_missing_table),
    ("schema_hallucination", fix_schema_hallucination),
)


# -- helpers ---------------------------------------------------------------------


def _all_cores(query: Query) -> list:
    cores = []
    for node in walk(query):
        if isinstance(node, SelectCore):
            cores.append(node)
    return cores


def _scope_nodes(core: SelectCore):
    """Nodes of one core without descending into nested subqueries."""
    stack = list(core.children())
    while stack:
        node = stack.pop()
        if isinstance(node, Query):
            continue
        yield node
        stack.extend(node.children())


def _binding_token(core: SelectCore, binding: str) -> str:
    """The original-case alias/name for a lowercase binding."""
    for source in core.from_clause.sources():
        if isinstance(source, TableRef) and source.binding() == binding:
            return source.alias or source.name
    return binding


def _binding_for_table(core: SelectCore, table: str) -> Optional[str]:
    for source in core.from_clause.sources():
        if isinstance(source, TableRef) and source.name.lower() == table:
            return source.alias or source.name
    return None


def _extend_joins(core: SelectCore, path: list, schema, graph: SchemaGraph) -> None:
    """Join the tables along ``path`` into the FROM clause."""
    present = {b for b in _bindings(core).values()}
    previous = path[0]
    for table in path[1:]:
        if table in present:
            previous = table
            continue
        fk = graph.edge_fk(previous, table)
        on = None
        if fk is not None:
            src_t, src_c, dst_t, dst_c = fk.normalized()
            # Tables already in scope may be aliased; refer to them by
            # their binding, new tables by their plain name.
            src_ref = _binding_for_table(core, src_t) or src_t
            dst_ref = _binding_for_table(core, dst_t) or dst_t
            if src_t == table:
                src_ref = table
            if dst_t == table:
                dst_ref = table
            on = Comparison(
                op="=",
                left=ColumnRef(column=src_c, table=src_ref),
                right=ColumnRef(column=dst_c, table=dst_ref),
            )
        core.from_clause.joins.append(
            JoinedTable(source=TableRef(name=table), on=on)
        )
        present.add(table)
        previous = table
