"""The four-level automaton over demonstration skeletons (§IV-C1/C2).

Each abstraction level gets its own automaton: a deterministic trie whose
states are token-sequence prefixes, with ``<START>``/``<END>`` sentinels.
The ``<END>`` state of each accepted sequence stores the indices of the
demonstrations whose skeleton reduces to that sequence, so matching a
predicted skeleton retrieves all demonstrations sharing the identical
state sequence in O(sequence length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlkit.abstraction import abstract_tokens
from repro.sqlkit.skeleton import skeleton_tokens

START = "<START>"
END = "<END>"


@dataclass
class LevelAutomaton:
    """The automaton at one abstraction level."""

    level: int
    _transitions: dict = field(default_factory=dict)  # prefix -> set(next)
    _end_states: dict = field(default_factory=dict)   # sequence -> [demo idx]

    def add(self, tokens: tuple, demo_index: int) -> None:
        """Accumulate another usage record into this one."""
        sequence = tuple(tokens)
        for i in range(len(sequence)):
            self._transitions.setdefault(sequence[:i], set()).add(sequence[i])
        self._transitions.setdefault(sequence, set()).add(END)
        self._end_states.setdefault(sequence, []).append(demo_index)

    def match(self, tokens: tuple) -> list:
        """Demonstration indices whose state sequence is identical.

        Returns an empty list when the sequence is absent (§IV-C2).
        """
        return list(self._end_states.get(tuple(tokens), []))

    def accepts(self, tokens: tuple) -> bool:
        """Whether the token sequence is an accepted end state."""
        return tuple(tokens) in self._end_states

    @property
    def state_count(self) -> int:
        """Number of distinct ``<END>`` states (accepted sequences)."""
        return len(self._end_states)


@dataclass
class AutomatonIndex:
    """All four level automatons over one demonstration pool."""

    levels: dict = field(default_factory=dict)  # level -> LevelAutomaton

    @staticmethod
    def build(demo_sqls: list) -> "AutomatonIndex":
        """Construct from the demonstration pool's gold SQL strings."""
        index = AutomatonIndex(
            levels={lvl: LevelAutomaton(level=lvl) for lvl in (1, 2, 3, 4)}
        )
        for demo_index, sql in enumerate(demo_sqls):
            tokens = skeleton_tokens(sql)
            for lvl in (1, 2, 3, 4):
                index.levels[lvl].add(abstract_tokens(tokens, lvl), demo_index)
        return index

    def match(self, level: int, detail_tokens: tuple) -> list:
        """Match a detail-level skeleton at the given abstraction level."""
        abstracted = abstract_tokens(list(detail_tokens), level)
        return self.levels[level].match(abstracted)

    def end_state_counts(self) -> dict:
        """Distinct end-state counts per level (the paper reports
        912:708:363:59 for Spider's training set)."""
        return {lvl: automaton.state_count for lvl, automaton in self.levels.items()}
