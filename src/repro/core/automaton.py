"""The four-level automaton over demonstration skeletons (§IV-C1/C2).

Each abstraction level gets its own automaton: a deterministic trie whose
states are token-sequence prefixes, with ``<START>``/``<END>`` sentinels.
The ``<END>`` state of each accepted sequence stores the indices of the
demonstrations whose skeleton reduces to that sequence, so matching a
predicted skeleton retrieves all demonstrations sharing the identical
state sequence in O(sequence length).

Construction has two entry points: :meth:`AutomatonIndex.build` parses a
pool of raw SQL strings (the cold path), and
:meth:`AutomatonIndex.from_skeletons` consumes detail-level skeleton
token sequences that were parsed earlier — the warm path used by
:mod:`repro.store` when loading a persisted demonstration store, which
skips SQL parsing entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlkit.abstraction import abstract_tokens
from repro.sqlkit.skeleton import skeleton_tokens

START = "<START>"
END = "<END>"


@dataclass
class LevelAutomaton:
    """The automaton at one abstraction level."""

    level: int
    _transitions: dict = field(default_factory=dict)  # prefix -> set(next)
    _end_states: dict = field(default_factory=dict)   # sequence -> [demo idx]
    # Lazily-built frozenset per queried end state (see match_set);
    # purely a cache, so it never participates in equality or repr.
    _match_sets: dict = field(default_factory=dict, compare=False, repr=False)

    def add(self, tokens: tuple, demo_index: int) -> None:
        """Accept one demonstration's skeleton sequence into the automaton.

        Every prefix of ``tokens`` becomes a state with a transition on
        the following token, the full sequence transitions to ``<END>``,
        and ``demo_index`` is appended to that end state's demonstration
        list — so demonstrations sharing a skeleton accumulate on one
        state in insertion order.

        :param tokens: the skeleton token sequence, already abstracted
            to this automaton's level.
        :param demo_index: position of the demonstration in its pool.
        """
        sequence = tuple(tokens)
        for i in range(len(sequence)):
            self._transitions.setdefault(sequence[:i], set()).add(sequence[i])
        self._transitions.setdefault(sequence, set()).add(END)
        self._end_states.setdefault(sequence, []).append(demo_index)
        self._match_sets.pop(sequence, None)

    def match(self, tokens: tuple) -> list:
        """Demonstration indices whose state sequence is identical.

        Returns an empty list when the sequence is absent (§IV-C2).
        """
        return list(self._end_states.get(tuple(tokens), []))

    def match_set(self, tokens: tuple) -> frozenset:
        """Membership view of :meth:`match`, memoized per end state.

        The retrieval pre-filter intersects long match lists with a
        small candidate set; testing from the candidate side needs set
        membership, and building a set per query would cost the very
        scan the filter exists to avoid.  Every demonstration lands on
        exactly one end state per level, so the cache is bounded by the
        pool size.  ``add`` invalidates the touched state's entry.
        """
        sequence = tuple(tokens)
        cached = self._match_sets.get(sequence)
        if cached is None:
            cached = frozenset(self._end_states.get(sequence, ()))
            self._match_sets[sequence] = cached
        return cached

    def accepts(self, tokens: tuple) -> bool:
        """Whether the token sequence is an accepted end state."""
        return tuple(tokens) in self._end_states

    @property
    def state_count(self) -> int:
        """Number of distinct ``<END>`` states (accepted sequences)."""
        return len(self._end_states)


@dataclass
class AutomatonIndex:
    """All four level automatons over one demonstration pool."""

    levels: dict = field(default_factory=dict)  # level -> LevelAutomaton

    @staticmethod
    def build(demo_sqls: list) -> "AutomatonIndex":
        """Construct from the demonstration pool's gold SQL strings.

        This is the cold path: every SQL string is tokenized and parsed
        into its detail-level skeleton, then abstracted at all four
        levels.  Pools that are indexed repeatedly should be persisted
        with :class:`repro.store.DemoStore`, whose load path feeds
        :meth:`from_skeletons` instead.

        :param demo_sqls: gold SQL strings, in pool order (the position
            of each string becomes its demonstration index).
        :return: the populated four-level index.
        """
        return AutomatonIndex.from_skeletons(
            skeleton_tokens(sql) for sql in demo_sqls
        )

    @staticmethod
    def from_skeletons(detail_skeletons) -> "AutomatonIndex":
        """Construct from precomputed detail-level skeleton sequences.

        The warm path: no SQL parsing happens here — only the cheap
        level-2..4 token abstractions and trie insertion.  Equivalent to
        :meth:`build` whenever ``detail_skeletons[i] ==
        skeleton_tokens(demo_sqls[i])``.

        :param detail_skeletons: iterable of detail-level (level-1)
            skeleton token sequences, in pool order.
        :return: the populated four-level index.
        """
        index = AutomatonIndex(
            levels={lvl: LevelAutomaton(level=lvl) for lvl in (1, 2, 3, 4)}
        )
        for demo_index, tokens in enumerate(detail_skeletons):
            tokens = list(tokens)
            for lvl in (1, 2, 3, 4):
                index.levels[lvl].add(abstract_tokens(tokens, lvl), demo_index)
        return index

    def match(self, level: int, detail_tokens: tuple) -> list:
        """Match a detail-level skeleton at the given abstraction level.

        :param level: abstraction level 1 (detail) .. 4 (clause); the
            detail tokens are abstracted to it before lookup.
        :param detail_tokens: a detail-level skeleton token sequence as
            produced by :func:`repro.sqlkit.skeleton.skeleton_tokens`.
        :return: demonstration indices stored on the matching end state,
            in insertion order; empty when no demonstration's skeleton
            abstracts to the same sequence.
        """
        abstracted = abstract_tokens(list(detail_tokens), level)
        return self.levels[level].match(abstracted)

    def match_set(self, level: int, detail_tokens: tuple) -> frozenset:
        """Frozenset of :meth:`match` results, memoized per end state.

        Same lookup as :meth:`match` but returns a cached immutable set,
        letting callers intersect a huge match list with a small
        candidate set from the candidate side in O(candidates) instead
        of scanning the list (see
        :func:`repro.core.selection.select_demonstrations`).
        """
        abstracted = abstract_tokens(list(detail_tokens), level)
        return self.levels[level].match_set(abstracted)

    def end_state_counts(self) -> dict:
        """Distinct end-state counts per level (the paper reports
        912:708:363:59 for Spider's training set)."""
        return {lvl: automaton.state_count for lvl, automaton in self.levels.items()}
