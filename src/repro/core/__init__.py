"""PURPLE — the paper's primary contribution.

Pipeline (Figure 3): schema pruning → skeleton prediction → demonstration
selection via the four-level automaton → prompt assembly under a token
budget → LLM call → database adaption with execution-consistency voting.
"""

from repro.core.automaton import AutomatonIndex, LevelAutomaton
from repro.core.adaption import DatabaseAdapter
from repro.core.config import PurpleConfig
from repro.core.consistency import consistency_vote
from repro.core.pipeline import Purple
from repro.core.prompt import PromptBuilder
from repro.core.pruning import SchemaPruner
from repro.core.selection import select_demonstrations
from repro.core.skeleton_prediction import SkeletonPredictionModule

__all__ = [
    "AutomatonIndex",
    "LevelAutomaton",
    "DatabaseAdapter",
    "PurpleConfig",
    "consistency_vote",
    "Purple",
    "PromptBuilder",
    "SchemaPruner",
    "select_demonstrations",
    "SkeletonPredictionModule",
]
