"""Demonstration selection — Algorithm 1 of the paper.

The preferential matching sequence ``I`` is a 4×k matrix of match lists
(rows = abstraction levels, columns = top-k predicted skeletons, row-major
order).  Selection proceeds in rounds: with budget ``p`` (starting at p₀
and grown by Increase-Generalization each round), one demonstration is
popped from each of the first ``p`` non-exhausted cells; duplicates are
skipped.  Lower abstraction levels and higher-probability skeletons are
preferred, exactly as Figure 8 illustrates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.automaton import AutomatonIndex
from repro.core.config import PurpleConfig

#: Minimum match-list length before the retrieval pre-filter engages
#: on a cell.  Filtering scans the whole list at Python speed (~100ns
#: per membership check) while an unfiltered cell only pays C-level
#: ``pop(0)`` churn (~len²/2 element moves at well under 1ns each), so
#: the filter only pays for itself on long lists — the ones that grow
#: with pool size.  Short cells stay byte-identical to the unfiltered
#: run as a bonus.
PREFILTER_MIN_MATCHES = 512


def select_demonstrations(
    index: AutomatonIndex,
    predicted_skeletons: list,
    config: PurpleConfig,
    rng: Optional[np.random.Generator] = None,
    max_demos: Optional[int] = None,
    candidates: Optional[frozenset] = None,
) -> list:
    """Run Algorithm 1 over the preferential matching matrix ``I``.

    :param index: the four-level
        :class:`~repro.core.automaton.AutomatonIndex` over the
        demonstration pool (cold-built via ``AutomatonIndex.build`` or
        warm-loaded from a :class:`~repro.store.DemoStore`).
    :param predicted_skeletons: list of
        :class:`~repro.core.skeleton_prediction.PredictedSkeleton`,
        best (highest-probability) first — the columns of ``I``.
    :param config: supplies the round budget ``p0``, the
        Increase-Generalization schedule, and the Figure-12 noise knobs
        (``mask_levels`` hides the finest abstraction rows,
        ``drop_skeleton_prob`` randomly discards one predicted skeleton).
    :param rng: numpy ``Generator`` consumed only by the noise knobs;
        may be ``None`` when both knobs are off.
    :param max_demos: optional hard cap; selection stops as soon as this
        many demonstrations are chosen.
    :param candidates: optional demo-index allow-list (the retrieval
        pre-filter of docs/retrieval.md).  Matches outside it are
        dropped from abstraction-level cells (levels 3–4) of ``I``
        longer than :data:`PREFILTER_MIN_MATCHES` before the rounds
        start.  The two skeleton-faithful levels are exempt — their
        matches are few and too valuable to lose to an approximate
        similarity ranking — and short fuzzy cells are exempt on cost
        grounds (see the constant); the filter targets exactly the
        match lists that grow with the pool.  Within the surviving
        matrix the selection order is exactly Algorithm 1's.  ``None``
        (the default) filters nothing and is byte-identical to the
        pre-retrieval behaviour.
    :return: demonstration-pool indices in priority order (most relevant
        first, no duplicates).  Indices refer to positions in the pool
        the ``index`` was built from.
    """
    skeletons = list(predicted_skeletons)
    if config.drop_skeleton_prob > 0 and rng is not None and len(skeletons) > 1:
        if rng.random() < config.drop_skeleton_prob:
            drop = int(rng.integers(0, len(skeletons)))
            skeletons.pop(drop)

    levels = [lvl for lvl in (1, 2, 3, 4) if lvl > config.mask_levels]
    # Build the preferential matching sequence I (row-major: level, then
    # skeleton rank).
    cells = []
    for level in levels:
        for skeleton in skeletons:
            matches = index.match(level, skeleton.tokens)
            if (
                candidates is not None
                and level > 2
                and len(matches) >= PREFILTER_MIN_MATCHES
            ):
                # Intersect from the candidate side: match lists append
                # pool indices in ascending order, so sorting the
                # intersection reproduces the order-preserving scan
                # ``[m for m in matches if m in candidates]`` at
                # O(candidates) instead of O(matches).
                members = index.match_set(level, skeleton.tokens)
                cells.append(sorted(m for m in candidates if m in members))
            else:
                cells.append(list(matches))

    selected: list = []
    chosen: set = set()
    p = config.p0
    iteration = 0
    while any(cells):
        active = [c for c in cells if c]
        for cell in active[:p]:
            while cell:
                demo = cell.pop(0)
                if demo not in chosen:
                    chosen.add(demo)
                    selected.append(demo)
                    break
            if max_demos is not None and len(selected) >= max_demos:
                return selected
        p = config.generalization_step(p, iteration)
        iteration += 1
    return selected
