"""Prompt assembly under a token budget (§III-A, §V-D).

The prompt is ``CAT(E', D, X)``: selected demonstrations, the (pruned)
task schema, and the question.  Each demonstration carries its own pruned
schema (§III-A: "the schema of each demonstration undergoes a pruning
process"), pruned by the gold-used items, plus representative column
values following BRIDGE.

Demonstrations are appended in priority order while they fit the budget;
leftover budget is filled with randomly chosen demonstrations (§IV-C3:
"the remaining demonstrations are chosen randomly to fully utilize the
budget").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.promptfmt import build_prompt, render_demo, render_schema, render_task
from repro.llm.tokenizer import count_tokens
from repro.plm.labels import used_schema_items
from repro.spider.dataset import Dataset


class PromptBuilder:
    """Renders demonstration blocks once, then packs prompts per task."""

    def __init__(self, demo_pool: Dataset, values_per_column: int = 2):
        self.demo_pool = demo_pool
        self.values_per_column = values_per_column
        self._blocks: list = []
        self._block_tokens: list = []
        for ex in demo_pool.examples:
            block = self._render_demo_block(ex)
            self._blocks.append(block)
            self._block_tokens.append(count_tokens(block) + 2)

    def __len__(self) -> int:
        return len(self._blocks)

    def demo_block(self, index: int) -> str:
        """The pre-rendered '### Example' block for one demo."""
        return self._blocks[index]

    def _render_demo_block(self, ex) -> str:
        database = self.demo_pool.database(ex.db_id)
        used_tables, used_columns = used_schema_items(ex.sql, database.schema)
        keep = {}
        for table in used_tables:
            keep[table] = [c for t, c in used_columns if t == table]
        pruned = database.schema.subset(keep) if keep else database.schema
        if not pruned.tables:
            pruned = database.schema
        schema_text = render_schema(
            database, pruned, values_per_column=self.values_per_column
        )
        return render_demo(schema_text, ex.question, ex.sql)

    # -- packing --------------------------------------------------------------

    def build(
        self,
        question: str,
        task_schema_text: str,
        demo_order: list,
        budget: int,
        rng: Optional[np.random.Generator] = None,
        instructions: str = "",
        extra_blocks: Optional[list] = None,
    ) -> str:
        """Assemble the prompt within ``budget`` input tokens.

        ``extra_blocks`` are pre-rendered ``### Example`` blocks placed
        before the pool demonstrations (used by the generation-based
        prompting extension).
        """
        task_block = render_task(task_schema_text, question)
        used = count_tokens(task_block) + (
            count_tokens(instructions) + 4 if instructions else 0
        )
        head_blocks = []
        for block in extra_blocks or []:
            cost = count_tokens(block) + 2
            if used + cost > budget:
                continue
            head_blocks.append(block)
            used += cost
        chosen: list = []
        chosen_set: set = set()
        for index in demo_order:
            cost = self._block_tokens[index]
            if used + cost > budget:
                continue
            chosen.append(index)
            chosen_set.add(index)
            used += cost
        if rng is not None:
            filler = rng.permutation(len(self._blocks))
            for index in filler:
                index = int(index)
                if index in chosen_set:
                    continue
                cost = self._block_tokens[index]
                if used + cost > budget:
                    break
                chosen.append(index)
                chosen_set.add(index)
                used += cost
        demos = head_blocks + [self._blocks[i] for i in chosen]
        return build_prompt(
            task_schema_text, question, demos=demos, instructions=instructions
        )
