"""Configuration for the PURPLE pipeline.

Defaults follow §V-A4: τ_p = 0.5, τ_n = 5, top-3 skeletons from a
fine-tuned generator, input budget 3072 tokens, consistency number 30,
p₀ = 1 with a +1 linear Increase-Generalization schedule.

The ``use_*`` flags drive the Table-6 ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Valid values of :attr:`PurpleConfig.retrieval` (docs/retrieval.md).
RETRIEVAL_MODES = ("off", "prefilter", "fused")


@dataclass
class PurpleConfig:
    """All knobs of the pipeline."""

    # Schema pruning (§IV-A)
    tau_p: float = 0.5          # relevance threshold
    tau_n: int = 5              # minimum columns kept per table
    use_pruning: bool = True
    use_steiner: bool = True    # False = RESDSQL-style top-k pruning
    steiner_method: str = "burst"  # "approx" scales to large schemas

    # Skeleton prediction (§IV-B)
    top_k_skeletons: int = 3

    # Demonstration selection (§IV-C)
    use_selection: bool = True  # False = random demonstrations
    # Persistent demonstration store (docs/demo-store.md).  When set,
    # ``fit`` warm-starts the automaton from this file (building it on
    # first use) instead of re-parsing the pool; ``offline_index``
    # makes a missing/stale store an error instead of a rebuild.
    store_path: Optional[str] = None
    offline_index: bool = False
    # Retrieval tier (docs/retrieval.md).  "off" — this pipeline is
    # byte-identical to a build without the tier (no embedding index is
    # even built); "prefilter" — the embedding index caps the fuzzy
    # abstraction-level automaton candidate set at
    # ``retrieval_candidates`` before Algorithm 1 (matches at the two
    # skeleton-faithful levels always survive);
    # "fused" — prefilter plus a similarity × rank re-ranking of the
    # selection.
    retrieval: str = "off"
    retrieval_dim: int = 256        # embedding width (hash modulus)
    # Pre-filter candidate-set size.  The default comes from
    # benchmarks/bench_retrieval.py's accuracy × latency sweep: the
    # prompt packer consumes only the head of the selection, so ~100
    # abstraction-level candidates keep EM/EX/TS at parity with
    # retrieval=off on the bench corpus while the query stays cheap.
    retrieval_candidates: int = 96
    retrieval_probes: int = 8       # coarse buckets probed per query
    p0: int = 1
    generalization: str = "linear-1"  # "linear-N" or "exp-N"
    mask_levels: int = 0        # Figure 12: ignore the first N levels
    drop_skeleton_prob: float = 0.0  # Figure 12: Drop-y noise

    # Prompt budget (§V-D)
    input_budget: int = 3072
    values_per_column: int = 2

    # Database adaption (§IV-D)
    use_adaption: bool = True
    max_repair_attempts: int = 5
    consistency_n: int = 30
    # Future-work extensions (§IV-D1 / §VII), off by default.
    map_functions: bool = False       # dialect function mapping repair
    use_synthesis: bool = False       # generation-based prompting fallback

    # Execution-feedback repair (docs/repair.md), off by default: with
    # repair_rounds = 0 the pipeline is byte-identical to a loop-free
    # build.  repair_token_budget caps extra repair tokens run-wide
    # (None = unlimited; see RepairBudget for the determinism contract).
    repair_rounds: int = 0
    repair_token_budget: Optional[int] = None

    # Execution dialect axis (docs/dialects.md): "sqlite" is the real
    # backend; "postgres" the simulated profile.  Guard, adapter, and
    # repair all target the same dialect as the executor.
    dialect: str = "sqlite"

    # Misc
    seed: int = 0
    classifier_epochs: int = 300
    skeleton_epochs: int = 150

    def generalization_step(self, p: int, iteration: int) -> int:
        """Apply the Increase-Generalization schedule to ``p``."""
        kind, _, amount = self.generalization.partition("-")
        value = int(amount or 1)
        if kind == "linear":
            return p + value
        if kind == "exp":
            return p * value
        raise ValueError(f"unknown generalization schedule {self.generalization!r}")
