"""Generation-based prompting (the paper's §VII future-work direction).

PURPLE's retrieval-based strategy "is inherently limited by the available
pool of demonstrations".  This module implements the generative
alternative the conclusion sketches: when no demonstration matches the
predicted skeleton closely, *synthesize* one by instantiating the skeleton
over the task's own (pruned) schema — placeholders become real tables,
columns, and values, and the result is verified executable before use.

The synthesized demonstration pairs the generated SQL with the task's own
question text, mirroring self-generated exemplar prompting.
"""

from __future__ import annotations

from typing import Optional

from repro.schema import Database, Schema, SchemaGraph, SQLiteExecutor
from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    ColumnRef,
    Comparison,
    FromClause,
    InExpr,
    LikeExpr,
    Literal,
    Query,
    SelectCore,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    walk,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.render import render_sql

PLACEHOLDER = "_"


def synthesize_sql(
    skeleton_tokens: tuple,
    schema: Schema,
    database: Database,
    executor: Optional[SQLiteExecutor] = None,
) -> Optional[str]:
    """Instantiate a detail-level skeleton over a schema.

    Returns executable SQL, or None when the skeleton is too exotic for
    the filler (complex skeletons simply fall back to retrieval).
    """
    text = " ".join(skeleton_tokens).replace("LIMIT _", "LIMIT 1")
    try:
        query = parse_sql(text)
    except SQLError:
        return None
    try:
        _Filler(schema, database).fill(query)
    except _CannotFill:
        return None
    sql = render_sql(query)
    if executor is not None:
        key = executor.register(database)
        if not executor.execute(key, sql).ok:
            return None
    else:
        with SQLiteExecutor() as scratch:
            key = scratch.register(database)
            if not scratch.execute(key, sql).ok:
                return None
    return sql


class _CannotFill(Exception):
    """Raised when the skeleton uses structure the filler cannot ground."""


class _Filler:
    """Assigns tables, columns, and values to a skeleton's placeholders."""

    def __init__(self, schema: Schema, database: Database):
        self.schema = schema
        self.database = database
        self.graph = SchemaGraph(schema)

    # -- entry ------------------------------------------------------------------

    def fill(self, query: Query) -> None:
        """Ground every placeholder of the query in the schema."""
        self._fill_query(query, outer_tables=[])

    def _fill_query(self, query: Query, outer_tables: list) -> None:
        for core in query.all_cores():
            self._fill_core(core, outer_tables)

    # -- per-core ----------------------------------------------------------------

    def _fill_core(self, core: SelectCore, outer_tables: list) -> None:
        bindings = self._assign_tables(core, outer_tables)
        tables = list(bindings.values())
        if not tables:
            raise _CannotFill
        column_cycle = self._column_cycle(tables[0])

        for node in self._scope_nodes(core):
            if isinstance(node, Comparison):
                self._fill_comparison(node, bindings, column_cycle, core)
            elif isinstance(node, BetweenExpr):
                self._fill_between(node, bindings, column_cycle)
            elif isinstance(node, LikeExpr):
                self._fill_like(node, bindings, column_cycle)
            elif isinstance(node, InExpr):
                self._fill_in(node, bindings, column_cycle, outer_tables + tables)
            elif isinstance(node, Agg):
                self._fill_agg(node, bindings, column_cycle)
        # Remaining bare placeholders (projections, group/order keys).
        for node in self._scope_nodes(core):
            if isinstance(node, ColumnRef) and node.column == PLACEHOLDER:
                self._assign_column(node, bindings, column_cycle)
        # Nested subqueries open their own scope, related to this one.
        for node in self._scope_nodes(core):
            if isinstance(node, Subquery):
                self._fill_query(node.query, outer_tables=tables)

    # -- tables ------------------------------------------------------------------

    def _assign_tables(self, core: SelectCore, outer_tables: list) -> dict:
        """Assign real tables to FROM placeholders; returns binding->table."""
        clause = core.from_clause
        if clause is None:
            raise _CannotFill
        sources = clause.sources()
        if any(isinstance(s, SubquerySource) for s in sources):
            raise _CannotFill  # derived tables are out of the filler's scope
        bindings: dict = {}
        previous = None
        for i, source in enumerate(sources):
            assert isinstance(source, TableRef)
            if i == 0:
                # In a subquery, prefer a table related to the outer one.
                table = self._pick_first_table(outer_tables)
            else:
                table = self._pick_neighbor(previous)
            source.name = table
            source.alias = f"T{i + 1}" if len(sources) > 1 else None
            bindings[source.binding()] = table
            previous = table
        # Ground ON conditions with the connecting foreign keys.
        for join in clause.joins:
            if join.on is None:
                continue
            if not isinstance(join.on, Comparison):
                raise _CannotFill
            left_binding = sources[0].binding()
            right_binding = join.source.binding()
            fk = self.graph.edge_fk(
                bindings[left_binding], bindings[right_binding]
            )
            if fk is None:
                raise _CannotFill
            src_t, src_c, dst_t, dst_c = fk.normalized()
            left_is_src = bindings[left_binding] == src_t
            join.on.left = ColumnRef(
                column=src_c if left_is_src else dst_c,
                table=_original(sources, left_binding),
            )
            join.on.right = ColumnRef(
                column=dst_c if left_is_src else src_c,
                table=_original(sources, right_binding),
            )
        return bindings

    def _pick_first_table(self, outer_tables: list) -> str:
        if outer_tables:
            for outer in outer_tables:
                for neighbor in self.graph.neighbors(outer):
                    return neighbor
        return self.schema.tables[0].key

    def _pick_neighbor(self, previous: Optional[str]) -> str:
        if previous is not None:
            neighbors = self.graph.neighbors(previous)
            if neighbors:
                return neighbors[0]
        raise _CannotFill

    # -- columns and values ---------------------------------------------------------

    def _column_cycle(self, table: str):
        columns = [
            c.name
            for c in self.schema.table(table).columns
            if c.key != (self.schema.table(table).primary_key or "").lower()
        ] or [c.name for c in self.schema.table(table).columns]
        state = {"i": 0}

        def next_column() -> str:
            """The next non-key column, cycling."""
            name = columns[state["i"] % len(columns)]
            state["i"] += 1
            return name

        return next_column

    def _assign_column(self, ref: ColumnRef, bindings: dict, cycle) -> None:
        ref.column = cycle()
        if len(bindings) > 1:
            ref.table = next(iter(bindings))

    def _numeric_column(self, table: str) -> str:
        for col in self.schema.table(table).columns:
            if col.col_type in ("integer", "real") and col.key != (
                self.schema.table(table).primary_key or ""
            ).lower():
                return col.name
        raise _CannotFill

    def _value_for(self, table: str, column: str):
        values = self.database.column_values(table, column, limit=5)
        if not values:
            raise _CannotFill
        return values[0]

    def _literal_for(self, table: str, column: str) -> Literal:
        value = self._value_for(table, column)
        if isinstance(value, (int, float)):
            return Literal.number(value)
        return Literal.string(str(value))

    def _resolve(self, ref: ColumnRef, bindings: dict) -> tuple:
        if ref.table and ref.table.lower() in bindings:
            return bindings[ref.table.lower()], ref.column
        return next(iter(bindings.values())), ref.column

    # -- predicates -------------------------------------------------------------------

    def _fill_comparison(self, node: Comparison, bindings: dict, cycle, core) -> None:
        if isinstance(node.left, ColumnRef) and node.left.column == PLACEHOLDER:
            self._assign_column(node.left, bindings, cycle)
        if isinstance(node.right, ColumnRef) and node.right.column == PLACEHOLDER:
            if isinstance(node.left, ColumnRef):
                table, column = self._resolve(node.left, bindings)
                literal = self._literal_for(table, column)
                node.right = literal

    def _fill_between(self, node: BetweenExpr, bindings: dict, cycle) -> None:
        if isinstance(node.left, ColumnRef) and node.left.column == PLACEHOLDER:
            # BETWEEN needs a numeric operand.
            table = next(iter(bindings.values()))
            node.left.column = self._numeric_column(table)
            if len(bindings) > 1:
                node.left.table = next(iter(bindings))
        table, column = self._resolve(node.left, bindings)
        value = self._value_for(table, column)
        if not isinstance(value, (int, float)):
            raise _CannotFill
        node.low = Literal.number(value)
        node.high = Literal.number(value + 10)

    def _fill_like(self, node: LikeExpr, bindings: dict, cycle) -> None:
        if isinstance(node.left, ColumnRef) and node.left.column == PLACEHOLDER:
            self._assign_column(node.left, bindings, cycle)
        table, column = self._resolve(node.left, bindings)
        value = self._value_for(table, column)
        word = str(value).split(" ")[0]
        node.pattern = Literal.string(f"%{word}%")

    def _fill_in(self, node: InExpr, bindings: dict, cycle, scope_tables) -> None:
        if not isinstance(node.source, Subquery):
            raise _CannotFill
        outer_table = next(iter(bindings.values()))
        # Fill the inner query first (anchored to the outer table), then
        # ground both sides of the membership test with the connecting FK.
        self._fill_query(node.source.query, outer_tables=[outer_table])
        inner_core = node.source.query.core
        inner_sources = (
            inner_core.from_clause.sources() if inner_core.from_clause else []
        )
        if not inner_sources or not isinstance(inner_sources[0], TableRef):
            raise _CannotFill
        inner_table = inner_sources[0].name.lower()
        fk = self.graph.edge_fk(outer_table, inner_table)
        if fk is None:
            raise _CannotFill
        src_t, src_c, dst_t, dst_c = fk.normalized()
        outer_col = src_c if src_t == outer_table else dst_c
        inner_col = dst_c if src_t == outer_table else src_c
        if isinstance(node.left, ColumnRef) and node.left.column == PLACEHOLDER:
            node.left.column = outer_col
            if len(bindings) > 1:
                node.left.table = next(iter(bindings))
        if inner_core.items and isinstance(inner_core.items[0].expr, ColumnRef):
            inner_core.items[0].expr.column = inner_col
            if len(inner_sources) > 1:
                inner_core.items[0].expr.table = inner_sources[0].binding()
            else:
                inner_core.items[0].expr.table = None

    def _fill_agg(self, node: Agg, bindings: dict, cycle) -> None:
        for i, arg in enumerate(node.args):
            if isinstance(arg, ColumnRef) and arg.column == PLACEHOLDER:
                if node.func == "COUNT" and not node.distinct:
                    node.args[i] = Star()
                else:
                    self._assign_column(arg, bindings, cycle)

    # -- traversal ---------------------------------------------------------------------

    @staticmethod
    def _scope_nodes(core: SelectCore):
        stack = list(core.children())
        while stack:
            node = stack.pop()
            if isinstance(node, Query):
                continue  # handled by _fill_query's all_cores pass
            yield node
            stack.extend(node.children())


def _original(sources: list, binding: str) -> Optional[str]:
    for source in sources:
        if isinstance(source, TableRef) and source.binding() == binding:
            return source.alias or (None if source.alias is None else source.name)
    return None
