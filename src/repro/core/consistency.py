"""Execution-consistency voting (§IV-D2).

The LLM produces ``n`` candidate translations; each executable candidate
votes with its execution result, and the **first** SQL belonging to the
consensus (largest) result group is the output — exactly the paper's
"the first SQL that yields the consensus execution result is selected".
"""

from __future__ import annotations

from repro.schema import Database, SQLiteExecutor


def consistency_vote(
    sqls: list,
    executor: SQLiteExecutor,
    database: Database,
) -> str:
    """Pick the consensus translation among candidates."""
    if not sqls:
        return ""
    if len(sqls) == 1:
        return sqls[0]
    key = executor.register(database)
    groups: dict = {}
    order: list = []
    for sql in sqls:
        result = executor.execute(key, sql)
        if not result.ok:
            continue
        signature = _result_signature(result.sorted_rows())
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append(sql)
    if not groups:
        return sqls[0]
    consensus = max(order, key=lambda s: len(groups[s]))
    return groups[consensus][0]


def _result_signature(rows: list) -> tuple:
    return tuple(
        tuple(
            round(v, 4) if isinstance(v, float) else v for v in row
        )
        for row in rows
    )
