"""Python lint engine: a rule registry over the repo's own source tree.

The repo's source conventions used to live as ad-hoc walkers inside
individual tests (no ``print`` outside the render module, no unwaived
broad ``except``).  This module hosts them as registered AST rules over
one engine, so a convention is written once, surfaces identically in
``repro lint`` and in the tier-1 tests, and reports through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model.

Determinism rules guard the repo's reproducibility discipline: results
must be a pure function of the seed, so wall-clock reads and the global
``random`` module are banned outside the whitelisted clock/rng
utilities, and mutable default arguments (shared state across calls)
are banned everywhere.

A deliberate exception to a rule is waived per line with
``# noqa: <rule-id>`` — both the full id (``py.broad-except``) and the
bare suffix (``broad-except``, the historical marker) are accepted.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

from repro.analysis.diagnostics import Diagnostic, Span

#: Default lint root: the installed ``repro`` package itself.
PACKAGE_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class FileContext:
    """What a rule sees for one file."""

    path: Path  #: path relative to the package parent, e.g. repro/cli.py
    tree: ast.AST
    lines: tuple


@dataclass(frozen=True)
class LintRule:
    """One registered convention."""

    id: str
    description: str
    check: Callable[[FileContext], Iterator]
    #: files (relative to the package parent) exempt from this rule.
    allowed: frozenset = frozenset()


REGISTRY: dict = {}


def register(rule: LintRule) -> LintRule:
    """Add a rule to the registry (id collisions are a bug)."""
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    REGISTRY[rule.id] = rule
    return rule


def rule(rule_id: str, description: str, allowed: Iterable = ()):
    """Decorator form of :func:`register` for check functions.

    The check receives a :class:`FileContext` and yields
    ``(node, message)`` or ``(node, message, fix_hint)`` tuples, where
    ``node`` is any object with ``lineno``/``col_offset``.
    """
    def wrap(check: Callable) -> LintRule:
        return register(LintRule(
            id=rule_id,
            description=description,
            check=check,
            allowed=frozenset(Path(p) for p in allowed),
        ))
    return wrap


def _waived(line: str, rule_id: str) -> bool:
    """Whether a source line waives ``rule_id`` via a noqa comment."""
    marker = line.partition("# noqa:")[2]
    if not marker:
        return False
    tokens = {t.strip() for t in marker.split(",")}
    short = rule_id.partition(".")[2]
    return rule_id in tokens or (short and short in tokens)


class LintEngine:
    """Run the registered rules over a Python source tree."""

    def __init__(self, root: Path = PACKAGE_ROOT, rules: Optional[dict] = None):
        self.root = Path(root)
        self.rules = dict(rules) if rules is not None else dict(REGISTRY)

    def files(self) -> list:
        """All Python files under the root, deterministically ordered."""
        return sorted(self.root.rglob("*.py"))

    def run(self, files: Optional[Iterable] = None) -> list:
        """Lint the tree (or an explicit file list) into diagnostics."""
        diagnostics: list = []
        for path in (sorted(Path(f) for f in files) if files is not None
                     else self.files()):
            diagnostics.extend(self.run_file(path))
        return diagnostics

    def run_file(self, path: Path) -> list:
        """All diagnostics for one file."""
        relative = (
            path.relative_to(self.root.parent)
            if path.is_relative_to(self.root.parent) else path
        )
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Diagnostic(
                rule="py.syntax-error",
                # The raw text *is* the diagnostic here: a SyntaxError
                # renders its own position context.
                message=str(exc),  # noqa: no-raw-exc-str
                file=str(relative),
                span=Span(line=exc.lineno or 1, col=exc.offset or 0),
            )]
        context = FileContext(
            path=relative, tree=tree, lines=tuple(source.splitlines())
        )
        diagnostics = []
        for lint_rule in self.rules.values():
            if relative in lint_rule.allowed:
                continue
            for finding in lint_rule.check(context):
                node, message, *rest = finding
                lineno = getattr(node, "lineno", 1)
                line = (
                    context.lines[lineno - 1]
                    if 0 < lineno <= len(context.lines) else ""
                )
                if _waived(line, lint_rule.id):
                    continue
                diagnostics.append(Diagnostic(
                    rule=lint_rule.id,
                    message=message,
                    file=str(relative),
                    span=Span(line=lineno, col=getattr(node, "col_offset", 0)),
                    fix_hint=rest[0] if rest else {},
                ))
        diagnostics.sort(key=lambda d: (d.file, d.span.line, d.span.col, d.rule))
        return diagnostics


def lint_tree(root: Path = PACKAGE_ROOT) -> list:
    """One-shot convenience: lint a source tree with all registered rules."""
    return LintEngine(root).run()


# ---------------------------------------------------------------------------
# Registered rules
# ---------------------------------------------------------------------------


@rule(
    "py.no-print",
    "print() bypasses the rendering boundary; route output through "
    "repro.obs.render or the structured logger",
    allowed=("repro/obs/render.py",),
)
def _no_print(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node, "print() call outside repro/obs/render.py", {
                "replace_with": "repro.obs.render.out",
            }


def _is_broad(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Name):
        return expr.id in ("Exception", "BaseException")
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("Exception", "BaseException")
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(item) for item in expr.elts)
    return False


@rule(
    "py.broad-except",
    "blanket exception handlers swallow provider faults and real bugs; "
    "catch a narrow type from the repro.llm.errors taxonomy",
)
def _broad_except(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node.type):
            caught = "bare except" if node.type is None else ast.unparse(
                node.type
            )
            yield node, f"broad exception handler ({caught})", {
                "waiver": "# noqa: broad-except",
            }


_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today", "datetime.date.today",
})


def _dotted_name(expr: ast.expr) -> Optional[str]:
    parts: list = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name):
        return None
    parts.append(expr.id)
    return ".".join(reversed(parts))


@rule(
    "py.wall-clock",
    "wall-clock reads make runs irreproducible; use time.monotonic / "
    "time.perf_counter for durations or an injectable clock",
    allowed=("repro/utils/clock.py",),
)
def _wall_clock(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield node, f"wall-clock read {dotted}()", {
                    "replace_with": "time.monotonic / time.perf_counter",
                }


@rule(
    "py.stdlib-random",
    "the global random module breaks seeded reproducibility; derive a "
    "numpy Generator via repro.utils.rng instead",
    allowed=("repro/utils/rng.py",),
)
def _stdlib_random(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, "import of the stdlib random module", {
                        "replace_with": "repro.utils.rng.derive_rng",
                    }
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield node, "import from the stdlib random module", {
                    "replace_with": "repro.utils.rng.derive_rng",
                }


#: Packages whose public API surface must be self-documenting: the
#: paper-facing core pipeline, the persistent demonstration store, the
#: retrieval tier, and the evaluation harness.
_DOCSTRING_ROOTS = (
    "repro/core",
    "repro/store",
    "repro/retrieval",
    "repro/eval",
)


@rule(
    "py.missing-docstring",
    "public functions in repro/core, repro/store, repro/retrieval, and "
    "repro/eval are the paper-facing API surface; each needs a non-empty "
    "docstring",
)
def _missing_docstring(ctx: FileContext):
    if not str(ctx.path).startswith(_DOCSTRING_ROOTS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        docstring = ast.get_docstring(node)
        if not docstring or not docstring.strip():
            yield node, f"public function {node.name}() has no docstring", {
                "replace_with": "a one-line summary of behaviour and "
                                "parameters",
            }


@rule(
    "py.no-raw-exc-str",
    "str(exc) scatters ad-hoc failure-text parsing; normalize caught "
    "exceptions through repro.schema.errorinfo (exception_text / "
    "normalize_sqlite_error) so errors render identically everywhere",
    allowed=("repro/schema/errorinfo.py",),
)
def _no_raw_exc_str(ctx: FileContext):
    for handler in ast.walk(ctx.tree):
        if not isinstance(handler, ast.ExceptHandler) or handler.name is None:
            continue
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "str"
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == handler.name
            ):
                yield node, (
                    f"str({handler.name}) on a caught exception"
                ), {
                    "replace_with": "repro.schema.errorinfo.exception_text",
                }


#: The serving package: request-handler threads must never block
#: unboundedly.
_HANDLER_ROOT = "repro/serve"


@rule(
    "py.no-blocking-in-handler",
    "the serving layer runs on request-handler threads; time.sleep() "
    "stalls a handler (use the injectable Clock) and an unbounded "
    ".join() can hang shutdown forever (pass a timeout)",
)
def _no_blocking_in_handler(ctx: FileContext):
    if not str(ctx.path).startswith(_HANDLER_ROOT):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted == "time.sleep":
            yield node, "time.sleep() in the serving layer", {
                "replace_with": "an injectable repro.llm.resilient.Clock",
            }
            continue
        # A zero-argument .join() is a thread/queue join with no bound
        # (str.join always takes the iterable argument).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and not node.args
            and not any(kw.arg == "timeout" for kw in node.keywords)
        ):
            yield node, "unbounded .join() in the serving layer", {
                "replace_with": ".join(timeout=...) with a bounded wait",
            }


#: Legal metric name: lowercase dot-namespaced, ``subsystem.name`` with
#: at least one dot (``serve.latency_ms``, ``llm.breaker.transitions``).
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

_METRIC_METHODS = frozenset({"count", "gauge", "observe"})

#: Receivers (final attribute segment) treated as metrics surfaces.
#: ``obs`` is the conventional ``repro.obs.runtime`` alias, ``metrics``
#: a registry, ``windows`` a WindowedMetrics — this keeps unrelated
#: methods like ``str.count`` / ``list.count`` out of scope.
_METRIC_RECEIVERS = frozenset({"obs", "metrics", "windows"})


def _is_metric_call(node: ast.Call, bare_helpers: frozenset) -> bool:
    if isinstance(node.func, ast.Name):
        return node.func.id in bare_helpers
    if isinstance(node.func, ast.Attribute):
        if node.func.attr not in _METRIC_METHODS:
            return False
        dotted = _dotted_name(node.func.value)
        return (
            dotted is not None
            and dotted.split(".")[-1] in _METRIC_RECEIVERS
        )
    return False


def _obs_helper_imports(tree: ast.AST) -> frozenset:
    """Names bound in this file by ``from repro.obs[...] import count/...``."""
    names = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.module
            and node.module.startswith("repro.obs")
        ):
            for alias in node.names:
                if alias.name in _METRIC_METHODS:
                    names.add(alias.asname or alias.name)
    return frozenset(names)


@rule(
    "py.metric-name-convention",
    "metric names passed to count/gauge/observe must be dot-namespaced "
    "string literals (subsystem.name) so dashboards, the Prometheus "
    "exposition, and repro report can group them without a schema",
    allowed=(
        # The runtime facade forwards caller-supplied names verbatim.
        "repro/obs/runtime.py",
    ),
)
def _metric_name_convention(ctx: FileContext):
    bare_helpers = _obs_helper_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not _is_metric_call(node, bare_helpers):
            continue
        if not node.args:
            yield node, (
                "metric call without a positional name argument"
            ), {"replace_with": 'a literal "subsystem.name" first argument'}
            continue
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            yield name_arg, (
                "metric name must be a string literal, not an expression"
            ), {"replace_with": 'a literal "subsystem.name" first argument'}
            continue
        if not _METRIC_NAME.match(name_arg.value):
            yield name_arg, (
                f"metric name {name_arg.value!r} is not dot-namespaced "
                "(expected lowercase subsystem.name)"
            ), {"replace_with": 'a "subsystem.name" style metric name'}


@rule(
    "py.mutable-default",
    "mutable default arguments are shared across calls; default to None "
    "(or a dataclass field factory) and build inside the function",
)
def _mutable_default(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                yield default, f"mutable default argument ({kind} literal)", {
                    "replace_with": "None, built inside the function body",
                }


#: Dialect-specific SQL surface syntax that must not be hardcoded:
#: backtick-quoted identifiers (MySQL) and the ANSI FETCH FIRST limit
#: form (Postgres-preferred).  Double backticks are rst code markup in
#: docstrings, not SQL, so the identifier branch requires a *single*
#: backtick on each side.
_DIALECT_FRAGMENT = re.compile(
    r"(?<!`)`[A-Za-z_]\w*`(?!`)|\bFETCH\s+FIRST\b",
    re.IGNORECASE,
)


@rule(
    "py.no-inline-dialect-literal",
    "dialect-specific SQL fragments outside the renderer and the "
    "capability matrix drift when a dialect's surface changes; render "
    "through repro.sqlkit.render or consult repro.analysis.dialects",
    allowed=(
        # The renderer emits dialect surface syntax by design, and the
        # capability matrix's rule messages quote it to explain fixes.
        "repro/sqlkit/render.py",
        "repro/analysis/dialects.py",
    ),
)
def _no_inline_dialect_literal(ctx: FileContext):
    docstrings = set()
    for node in ast.walk(ctx.tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
            ):
                docstrings.add(id(body[0].value))
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in docstrings
        ):
            continue
        match = _DIALECT_FRAGMENT.search(node.value)
        if match is not None:
            yield node, (
                f"inline dialect-specific SQL fragment {match.group(0)!r}"
            ), {
                "replace_with": "repro.sqlkit.render.render_sql(..., dialect)",
                "waiver": "# noqa: no-inline-dialect-literal",
            }
