"""Schema-aware SQL semantic analyzer.

:class:`SQLAnalyzer` walks a :mod:`repro.sqlkit` AST against a
:class:`~repro.schema.Schema` and statically detects the defects that
would make the statement fail (or silently misbehave) on SQLite —
without executing it.  The six PURPLE hallucination classes (§IV-D1,
Table 2) each map to a rule id, so the database adapter can pick the
matching repair directly from a diagnosis instead of probing fixers,
and the eval harness can skip executions that are statically doomed.

Severity encodes SQLite's actual behaviour, verified against the
engine: ``error`` means the statement is certain to fail to prepare
(``no such column``, ``ambiguous column name``, ``no such function``,
``misuse of aggregate`` ...), ``warning`` means it executes but is
suspect (bare column under aggregation, affinity-mismatched
comparison, scalar-form ``MAX(a, b)``).

Resolution is deliberately conservative: when a FROM clause contains a
derived table (or an unknown table already reported), columns that fail
to resolve are *not* reported, because they may come from the opaque
source.  Zero false positives on well-formed SQL is a hard requirement
— the analyzer guards real executions.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Span
from repro.schema.model import Column, Schema
from repro.sqlkit.ast_nodes import (
    Agg,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Node,
    Query,
    SelectCore,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.spans import identifier_span
from repro.utils.text import normalize_identifier

#: Rule catalogue: id -> one-line description (rendered by docs and CLI).
RULES = {
    "sql.parse-error": "the statement does not parse as Spider-subset SQL",
    "sql.unknown-table": "FROM references a table absent from the schema",
    "sql.unknown-alias": "a column qualifier matches no FROM binding",
    "sql.unknown-column": "a column that exists in no table of the schema",
    "sql.table-column-mismatch":
        "a qualified column names a table that lacks it while an in-scope "
        "table has it",
    "sql.ambiguous-column":
        "an unqualified column is present in several FROM bindings",
    "sql.missing-table":
        "a column whose only owners are tables absent from FROM",
    "sql.unknown-function": "a function SQLite does not provide",
    "sql.aggregate-arity": "an aggregate called with more than one argument",
    "sql.aggregate-in-where": "an aggregate call inside WHERE",
    "sql.having-without-group-by": "HAVING on a non-aggregate query",
    "sql.set-arity": "compound SELECTs with different column counts",
    "sql.invalid-order-alias": "ORDER BY references a non-existent alias",
    "sql.ungrouped-column": "a bare column not covered by GROUP BY",
    "sql.type-mismatch": "a comparison across incompatible column types",
}

#: error-severity rules whose presence guarantees SQLite will refuse the
#: statement; ``sql.parse-error`` is excluded because our parser covers a
#: subset of SQLite's grammar.
FATAL_RULES = frozenset(RULES) - {
    "sql.parse-error",
    "sql.ungrouped-column",
    "sql.type-mismatch",
}

#: rule id -> PURPLE hallucination class (Table 2) for the rules that
#: diagnose one; this is what diagnosis-directed repair dispatches on.
RULE_ERROR_CLASS = {
    "sql.table-column-mismatch": "table_column_mismatch",
    "sql.ambiguous-column": "column_ambiguity",
    "sql.missing-table": "missing_table",
    "sql.unknown-function": "function_hallucination",
    "sql.unknown-column": "schema_hallucination",
    "sql.aggregate-arity": "aggregation_hallucination",
}

#: scalar functions SQLite provides (3.40 vintage — notably no CONCAT).
SQLITE_FUNCTIONS = frozenset({
    "ABS", "CHAR", "COALESCE", "FORMAT", "GLOB", "HEX", "IFNULL", "IIF",
    "INSTR", "LENGTH", "LIKE", "LOWER", "LTRIM", "MAX", "MIN", "NULLIF",
    "PRINTF", "QUOTE", "REPLACE", "ROUND", "RTRIM", "SIGN", "SUBSTR",
    "SUBSTRING", "TRIM", "TYPEOF", "UNICODE", "UPPER",
    "DATE", "TIME", "DATETIME", "JULIANDAY", "STRFTIME", "UNIXEPOCH",
})


#: Rules other analysis layers register as guard-eligible (the dialect
#: module adds its fatal ``dlct.*`` rules here at import time).
_EXTRA_FATAL_RULES: set = set()


def register_fatal_rules(rules) -> None:
    """Mark additional rule ids as statically dooming execution."""
    _EXTRA_FATAL_RULES.update(rules)


def fatal_diagnostics(diagnostics: list) -> list:
    """The subset that statically dooms execution (guard-eligible)."""
    return [
        d for d in diagnostics
        if d.severity == "error"
        and (d.rule in FATAL_RULES or d.rule in _EXTRA_FATAL_RULES)
    ]


def analyze_sql(sql: str, schema: Schema) -> list:
    """One-shot convenience over :class:`SQLAnalyzer`."""
    return SQLAnalyzer(schema).analyze(sql)


class SQLAnalyzer:
    """Statically check SQL statements against one database schema."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def analyze(self, sql: str) -> list:
        """All diagnostics for ``sql``, in source-traversal order."""
        try:
            query = parse_sql(sql)
        except SQLError as exc:
            span = None
            position = getattr(exc, "position", None)
            if isinstance(position, int):
                span = Span(col=position)
            return [Diagnostic(
                rule="sql.parse-error",
                # SQLError messages are this repo's own, already-stable
                # diagnostics — nothing to normalize.
                message=str(exc),  # noqa: no-raw-exc-str
                severity="error",
                span=span,
            )]
        run = _Run(self.schema, sql)
        run.check_query(query, outer=())
        return run.diagnostics

    def is_statically_doomed(self, sql: str) -> bool:
        """True when SQLite is certain to refuse this statement."""
        return bool(fatal_diagnostics(self.analyze(sql)))


class _Run:
    """State for one ``analyze`` call: the source text and findings."""

    def __init__(self, schema: Schema, sql: str):
        self.schema = schema
        self.sql = sql
        self.diagnostics: list = []
        self._seen: set = set()

    # -- reporting ---------------------------------------------------------

    def report(
        self,
        rule: str,
        message: str,
        severity: str = "error",
        anchor: Optional[str] = None,
        **fix_hint,
    ) -> None:
        if (rule, message) in self._seen:
            return
        self._seen.add((rule, message))
        error_class = RULE_ERROR_CLASS.get(rule)
        if error_class is not None:
            fix_hint = {"error_class": error_class, **fix_hint}
        span = None
        if anchor is not None:
            found = identifier_span(self.sql, anchor)
            if found is not None:
                span = Span(col=found[0], length=found[1])
        self.diagnostics.append(Diagnostic(
            rule=rule,
            message=message,
            severity=severity,
            span=span,
            fix_hint=fix_hint,
        ))

    # -- query / core traversal -------------------------------------------

    def check_query(self, query: Query, outer: tuple) -> None:
        cores = query.all_cores()
        if query.compounds:
            arities = [_core_arity(core) for core in cores]
            known = [a for a in arities if a is not None]
            if known and any(a != known[0] for a in known):
                op = query.compounds[0][0]
                self.report(
                    "sql.set-arity",
                    f"compound SELECTs project different column counts "
                    f"({', '.join(str(a) if a else '*' for a in arities)})",
                    anchor=op,
                )
        for core in cores:
            self.check_core(core, outer)

    def check_core(self, core: SelectCore, outer: tuple) -> None:
        bindings: dict = {}
        subqueries: list = []
        if core.from_clause is not None:
            for source in core.from_clause.sources():
                if isinstance(source, TableRef):
                    if self.schema.has_table(source.name):
                        bindings[source.binding()] = normalize_identifier(
                            source.name
                        )
                    else:
                        self.report(
                            "sql.unknown-table",
                            f"no table {source.name!r} in schema "
                            f"{self.schema.db_id!r}",
                            anchor=source.name,
                            table=source.name,
                        )
                        bindings[source.binding()] = None
                elif isinstance(source, SubquerySource):
                    bindings[source.binding() or "<derived>"] = None
                    subqueries.append(source.query)
        scope = _Scope((bindings,) + outer, self.schema)
        for sub in subqueries:
            # Derived tables are not correlated on SQLite: the inner
            # query resolves against its own FROM only.
            self.check_query(sub, ())
        aliases = {
            item.alias.lower() for item in core.items if item.alias
        }
        _CoreChecker(self, core, scope, aliases).check()


class _Scope:
    """A chain of binding maps, innermost first.

    Each map is ``binding -> table key`` with None marking an opaque
    source (derived table or unknown table): resolution through an
    opaque source is treated as "might succeed", which suppresses
    reports rather than risking a false positive.
    """

    def __init__(self, chain: tuple, schema: Schema):
        self.chain = chain
        self.schema = schema

    def lookup_binding(self, qualifier: str):
        """(found, table_key_or_None, owning map) for a qualifier."""
        target = qualifier.lower()
        for bindings in self.chain:
            if target in bindings:
                return True, bindings[target], bindings
        return False, None, None

    def has_opaque(self) -> bool:
        """Whether any binding anywhere in the chain is opaque."""
        return any(
            table is None
            for bindings in self.chain
            for table in bindings.values()
        )

    def holders(self, bindings: dict, column: str) -> list:
        """Bindings of one map whose (known) table has ``column``."""
        return sorted(
            b for b, t in bindings.items()
            if t is not None and self.schema.table(t).has_column(column)
        )

    def resolve(self, ref: ColumnRef) -> Optional[Column]:
        """The schema column a reference resolves to, when certain."""
        if ref.table:
            found, table, _ = self.lookup_binding(ref.table)
            if found and table is not None:
                tbl = self.schema.table(table)
                if tbl.has_column(ref.column):
                    return tbl.column(ref.column)
            return None
        for bindings in self.chain:
            holders = self.holders(bindings, ref.column)
            if len(holders) == 1:
                return self.schema.table(bindings[holders[0]]).column(
                    ref.column
                )
            if holders or any(t is None for t in bindings.values()):
                return None
        return None


class _CoreChecker:
    """All per-core rules, sharing one resolution scope."""

    def __init__(self, run: _Run, core: SelectCore, scope: _Scope,
                 aliases: set):
        self.run = run
        self.schema = run.schema
        self.core = core
        self.scope = scope
        self.aliases = aliases

    def run_clause(self, node: Optional[Node], context: str) -> None:
        if node is None:
            return
        for expr in _clause_nodes(node):
            if isinstance(expr, Subquery):
                self.run.check_query(expr.query, self.scope.chain)
            elif isinstance(expr, ColumnRef):
                self.check_column(expr, context)
            elif isinstance(expr, Star):
                self.check_star(expr)
            elif isinstance(expr, Agg):
                self.check_aggregate(expr, context)
            elif isinstance(expr, FuncCall):
                self.check_function(expr)
            elif isinstance(expr, Comparison):
                self.check_comparison(expr)

    def check(self) -> None:
        core = self.core
        for item in core.items:
            self.run_clause(item.expr, "select")
        if core.from_clause is not None:
            for join in core.from_clause.joins:
                self.run_clause(join.on, "on")
        self.run_clause(core.where, "where")
        for expr in core.group_by:
            self.run_clause(expr, "group")
        self.run_clause(core.having, "having")
        for item in core.order_by:
            self.run_clause(item.expr, "order")
        self.check_having_clause()
        self.check_grouping()

    # -- column resolution -------------------------------------------------

    def check_column(self, ref: ColumnRef, context: str) -> None:
        column = ref.column
        if (
            context in ("order", "having", "group")
            and not ref.table
            and column.lower() in self.aliases
        ):
            return  # resolves as a select-list output name
        if ref.table:
            self._check_qualified(ref)
        else:
            self._check_unqualified(ref, context)

    def _check_qualified(self, ref: ColumnRef) -> None:
        found, table, bindings = self.scope.lookup_binding(ref.table)
        if not found:
            if self.scope.has_opaque():
                return
            self.run.report(
                "sql.unknown-alias",
                f"qualifier {ref.table!r} matches no FROM binding",
                anchor=ref.table,
                qualifier=ref.table,
                column=ref.column,
            )
            return
        if table is None:
            return  # derived table: columns are opaque
        if self.schema.table(table).has_column(ref.column):
            return
        holders = self.scope.holders(bindings, ref.column)
        if holders:
            self.run.report(
                "sql.table-column-mismatch",
                f"table {table!r} (bound as {ref.table!r}) has no column "
                f"{ref.column!r}; in-scope holder(s): {', '.join(holders)}",
                anchor=ref.column,
                column=ref.column,
                qualifier=ref.table,
                candidates=holders,
            )
            return
        owners = [
            t.name for t in self.schema.tables_with_column(ref.column)
        ]
        if owners:
            self.run.report(
                "sql.unknown-column",
                f"column {ref.column!r} is not in table {table!r}; it "
                f"exists only in out-of-scope table(s): {', '.join(owners)}",
                anchor=ref.column,
                column=ref.column,
                qualifier=ref.table,
            )
        else:
            self.run.report(
                "sql.unknown-column",
                f"column {ref.column!r} exists in no table of schema "
                f"{self.schema.db_id!r}",
                anchor=ref.column,
                column=ref.column,
            )

    def _check_unqualified(self, ref: ColumnRef, context: str) -> None:
        column = ref.column
        for bindings in self.scope.chain:
            holders = self.scope.holders(bindings, column)
            if len(holders) >= 2:
                self.run.report(
                    "sql.ambiguous-column",
                    f"column {column!r} is ambiguous: present in bindings "
                    f"{', '.join(holders)}",
                    anchor=column,
                    column=column,
                    candidates=holders,
                )
                return
            if holders:
                return  # uniquely resolved in this scope
            if any(t is None for t in bindings.values()):
                return  # an opaque source might provide it
        owners = [t.name for t in self.schema.tables_with_column(column)]
        if owners:
            self.run.report(
                "sql.missing-table",
                f"column {column!r} belongs only to table(s) absent from "
                f"FROM: {', '.join(owners)}",
                anchor=column,
                column=column,
                tables=owners,
            )
        elif context == "order" and self.aliases:
            self.run.report(
                "sql.invalid-order-alias",
                f"ORDER BY references {column!r}, which is neither a "
                f"column in scope nor a select alias "
                f"({', '.join(sorted(self.aliases))})",
                anchor=column,
                column=column,
                aliases=sorted(self.aliases),
            )
        else:
            self.run.report(
                "sql.unknown-column",
                f"column {column!r} exists in no table of schema "
                f"{self.schema.db_id!r}",
                anchor=column,
                column=column,
            )

    def check_star(self, star: Star) -> None:
        if not star.table:
            return
        found, _, _ = self.scope.lookup_binding(star.table)
        if not found and not self.scope.has_opaque():
            self.run.report(
                "sql.unknown-alias",
                f"qualifier {star.table!r} matches no FROM binding",
                anchor=star.table,
                qualifier=star.table,
            )

    # -- aggregates and functions ------------------------------------------

    def check_aggregate(self, agg: Agg, context: str) -> None:
        if context == "where":
            self.run.report(
                "sql.aggregate-in-where",
                f"aggregate {agg.func}() inside WHERE "
                f"(misuse of aggregate on SQLite)",
                anchor=agg.func,
                function=agg.func,
            )
        if len(agg.args) > 1:
            # COUNT/SUM/AVG are unary, and DISTINCT aggregates must take
            # exactly one argument; MAX/MIN with several arguments fall
            # back to SQLite's scalar form — legal, but almost certainly
            # not what a Spider-subset query meant.
            fatal = agg.distinct or agg.func in ("COUNT", "SUM", "AVG")
            self.run.report(
                "sql.aggregate-arity",
                f"{agg.func}({'DISTINCT ' if agg.distinct else ''}...) "
                f"called with {len(agg.args)} arguments",
                severity="error" if fatal else "warning",
                anchor=agg.func,
                function=agg.func,
                arity=len(agg.args),
            )

    def check_function(self, call: FuncCall) -> None:
        if call.name.upper() not in SQLITE_FUNCTIONS:
            self.run.report(
                "sql.unknown-function",
                f"no such function on SQLite: {call.name}",
                anchor=call.name,
                function=call.name,
            )

    # -- comparisons -------------------------------------------------------

    def check_comparison(self, cmp: Comparison) -> None:
        for column_side, other in ((cmp.left, cmp.right),
                                   (cmp.right, cmp.left)):
            if not isinstance(column_side, ColumnRef):
                continue
            if not isinstance(other, Literal) or other.kind != "string":
                continue
            resolved = self.scope.resolve(column_side)
            if resolved is None or resolved.col_type not in (
                "integer", "real"
            ):
                continue
            if _numeric_text(other.value):
                continue  # SQLite affinity converts it cleanly
            self.run.report(
                "sql.type-mismatch",
                f"{resolved.col_type} column {column_side.column!r} "
                f"compared with non-numeric string {other.value!r}",
                severity="warning",
                anchor=column_side.column,
                column=column_side.column,
                col_type=resolved.col_type,
                value=other.value,
            )

    # -- grouping rules ----------------------------------------------------

    def check_having_clause(self) -> None:
        core = self.core
        if core.having is None or core.group_by:
            return
        aggregated = any(
            isinstance(n, Agg)
            for item in core.items
            for n in _clause_nodes(item.expr)
        ) or any(isinstance(n, Agg) for n in _clause_nodes(core.having))
        if not aggregated:
            self.run.report(
                "sql.having-without-group-by",
                "HAVING on a non-aggregate query (no GROUP BY and no "
                "aggregate in sight)",
                anchor="HAVING",
            )

    def check_grouping(self) -> None:
        core = self.core
        bare = [
            item.expr for item in core.items
            if isinstance(item.expr, ColumnRef)
        ]
        if core.group_by:
            grouped_refs = [
                g for g in core.group_by if isinstance(g, ColumnRef)
            ]
            grouped = {g.column.lower() for g in grouped_refs}
            if not grouped:
                return
            for ref in bare:
                if ref.column.lower() in grouped:
                    continue
                if self._grouped_by_row_key(ref, grouped_refs):
                    continue  # functionally determined by the group key
                self.run.report(
                    "sql.ungrouped-column",
                    f"column {ref.column!r} is projected bare but not "
                    f"in GROUP BY (SQLite picks an arbitrary row)",
                    severity="warning",
                    anchor=ref.column,
                    column=ref.column,
                )
            return
        has_agg_item = any(
            any(isinstance(n, Agg) for n in _clause_nodes(item.expr))
            for item in core.items
        )
        if not has_agg_item:
            return
        for ref in bare:
            self.run.report(
                "sql.ungrouped-column",
                f"column {ref.column!r} is projected next to an "
                f"aggregate without GROUP BY",
                severity="warning",
                anchor=ref.column,
                column=ref.column,
            )

    def _owner_binding(self, ref: ColumnRef):
        """(binding, table key) a reference certainly resolves to."""
        if ref.table:
            found, table, _ = self.scope.lookup_binding(ref.table)
            if (
                found and table is not None
                and self.schema.table(table).has_column(ref.column)
            ):
                return ref.table.lower(), table
            return None
        for bindings in self.scope.chain:
            holders = self.scope.holders(bindings, ref.column)
            if len(holders) == 1:
                return holders[0], bindings[holders[0]]
            if holders or any(t is None for t in bindings.values()):
                return None
        return None

    def _grouped_by_row_key(self, ref: ColumnRef, grouped_refs: list) -> bool:
        """Whether the group key is the primary key of ``ref``'s table.

        ``SELECT T2.name, COUNT(*) ... GROUP BY T2.id`` is the standard
        Spider idiom: grouping by a table's primary key functionally
        determines every other column of that table, so the bare
        projection is well-defined, not arbitrary.
        """
        owner = self._owner_binding(ref)
        if owner is None:
            return False
        binding, table = owner
        primary = (self.schema.table(table).primary_key or "").lower()
        if not primary:
            return False
        for grouped in grouped_refs:
            if grouped.column.lower() != primary:
                continue
            grouped_owner = self._owner_binding(grouped)
            if grouped_owner is not None and grouped_owner[0] == binding:
                return True
        return False


# -- small helpers ----------------------------------------------------------


def _clause_nodes(node: Node):
    """``node`` and descendants, stopping at nested queries (which are
    analyzed in their own scope)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (Query, Subquery)):
            continue
        stack.extend(current.children())


def _core_arity(core: SelectCore) -> Optional[int]:
    """Projection width, or None when a star makes it schema-dependent."""
    if any(isinstance(item.expr, Star) for item in core.items):
        return None
    return len(core.items)


def _numeric_text(value) -> bool:
    try:
        float(value)
    except (TypeError, ValueError):
        return False
    return True
