"""The shared diagnostic model for every rule engine in this package.

Both the SQL semantic analyzer (:mod:`repro.analysis.sqlcheck`) and the
Python lint engine (:mod:`repro.analysis.pylint`) report findings as
:class:`Diagnostic` records: a stable rule id, a severity, a source span,
a human message, and a machine-readable fix hint.  One model means one
JSON shape for ``repro lint --format json`` / ``repro analyze --format
json``, one metrics key (``analysis.rule{rule=...}``) for the
observability layer, and one waiver convention.

Severities:

* ``error`` — the construct is statically known to fail (SQL: the
  statement cannot execute on SQLite; Python: the repo's correctness
  conventions are violated).  Errors gate exit codes and the harness's
  pre-execution guard.
* ``warning`` — semantically suspect but executable (e.g. a bare column
  under aggregation, which SQLite tolerates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs import runtime as obs

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Span:
    """Where a diagnostic anchors in its source.

    ``line`` is 1-based; ``col`` is the 0-based character offset within
    that line (for one-line SQL strings the offset into the statement).
    ``length`` covers the offending token when known.
    """

    line: int = 1
    col: int = 0
    length: int = 0

    def as_dict(self) -> dict:
        return {"line": self.line, "col": self.col, "length": self.length}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a rule engine.

    ``fix_hint`` is machine-readable repair guidance: the SQL analyzer
    puts the matching hallucination ``error_class`` there (which is how
    the database adapter picks its repair directly), plus the offending
    identifiers; Python rules describe the expected rewrite.
    """

    rule: str
    message: str
    severity: str = "error"
    span: Optional[Span] = None
    file: Optional[str] = None
    fix_hint: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def error_class(self) -> Optional[str]:
        """The paper's hallucination class this finding maps to, if any."""
        return self.fix_hint.get("error_class")

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` line shape)."""
        payload = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.file is not None:
            payload["file"] = self.file
        if self.span is not None:
            payload["span"] = self.span.as_dict()
        if self.fix_hint:
            payload["fix_hint"] = dict(self.fix_hint)
        return payload

    def render(self) -> str:
        """One-line human form: ``file:line:col: severity rule message``."""
        location = self.file or "<sql>"
        if self.span is not None:
            location += f":{self.span.line}:{self.span.col}"
        return f"{location}: {self.severity} [{self.rule}] {self.message}"


def record_diagnostics(diagnostics: list) -> None:
    """Feed per-rule counters to the active observer (no-op when off)."""
    for diagnostic in diagnostics:
        obs.count("analysis.rule", rule=diagnostic.rule)


def summarize(diagnostics: list) -> dict:
    """``{rule_id: count}`` over a batch, deterministically ordered."""
    counts: dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
    return dict(sorted(counts.items()))
