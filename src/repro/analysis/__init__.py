"""Static analysis: shared diagnostics, SQL semantic checks, source lint.

Two rule engines share one :class:`Diagnostic` model:

* :mod:`repro.analysis.sqlcheck` — a schema-aware SQL semantic analyzer
  that statically detects the PURPLE hallucination classes (plus general
  defects) without executing anything; it drives diagnosis-directed
  repair in the database adapter and the eval harness's pre-execution
  guard;
* :mod:`repro.analysis.pylint` — an AST lint engine over the repo's own
  source tree hosting the project conventions (rendering boundary,
  narrow exceptions, determinism discipline) as registered rules.

Both surface through ``repro lint`` and ``repro analyze``.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Span,
    record_diagnostics,
    summarize,
)
from repro.analysis.dialects import (
    DIALECT_FATAL_RULES,
    DIALECT_RULES,
    PROFILES,
    DialectAnalyzer,
    DialectProfile,
    analyze_dialect,
    get_profile,
)
from repro.analysis.pylint import (
    PACKAGE_ROOT,
    REGISTRY,
    FileContext,
    LintEngine,
    LintRule,
    lint_tree,
)
from repro.analysis.sqlcheck import (
    FATAL_RULES,
    RULE_ERROR_CLASS,
    RULES,
    SQLAnalyzer,
    analyze_sql,
    fatal_diagnostics,
)

__all__ = [
    "Diagnostic",
    "Span",
    "record_diagnostics",
    "summarize",
    "DIALECT_FATAL_RULES",
    "DIALECT_RULES",
    "PROFILES",
    "DialectAnalyzer",
    "DialectProfile",
    "analyze_dialect",
    "get_profile",
    "PACKAGE_ROOT",
    "REGISTRY",
    "FileContext",
    "LintEngine",
    "LintRule",
    "lint_tree",
    "FATAL_RULES",
    "RULE_ERROR_CLASS",
    "RULES",
    "SQLAnalyzer",
    "analyze_sql",
    "fatal_diagnostics",
]
