"""Dialect capability matrix and portability rules (``dlct.*``).

PURPLE's analyzer (PR 4) guards a single SQL surface — SQLite.  This
module makes the legal surface *data*: a declarative
:class:`DialectProfile` per dialect (SQLite, Postgres, MySQL) describing
identifier quoting, row-limit forms, string concatenation, implicit-cast
strictness, reserved words, and function availability.  A family of
``dlct.*`` rules walks a parsed query against a target profile and emits
:class:`~repro.analysis.diagnostics.Diagnostic`\\ s whose ``fix_hint``
names the portable rewrite, so the pre-execution guard can refuse
statements the target engine would reject and the repair loop can quote
the finding back to the LLM.

Zero false positives on well-formed SQL remains the hard requirement:
every rule only fires when the construct is *certainly* illegal (or
certainly misbehaves) on the target dialect.  Resolution-dependent rules
reuse the sqlcheck scope machinery and stay silent whenever a derived
table or unknown binding makes resolution uncertain.

The renderer's per-dialect knobs (:mod:`repro.sqlkit.render`) and this
matrix describe the same facts; the property suite holds them to each
other (a corpus query rendered for dialect *d* must analyze clean under
target *d*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.sqlcheck import (
    SQLITE_FUNCTIONS,
    SQLAnalyzer,
    _clause_nodes,
    _numeric_text,
    _Scope,
    fatal_diagnostics,
    register_fatal_rules,
)
from repro.obs import runtime as obs
from repro.schema.model import Schema
from repro.sqlkit.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Node,
    Query,
    SelectCore,
    SelectItem,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    walk,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.keywords import KEYWORDS, RESERVED_WORDS
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.tokens import TokenKind, tokenize

#: Characters that open a quoted identifier (or string) in some dialect.
_QUOTE_CHARS = "\"`['"

#: Human-readable names for the quoting styles, keyed by open character.
_QUOTE_STYLE = {'"': "double-quote", "`": "backtick", "[": "bracket"}


@dataclass(frozen=True)
class DialectProfile:
    """The legal surface of one SQL dialect (declarative).

    ``ident_quotes`` lists the identifier-quoting characters the engine
    accepts; ``limit_forms`` the row-limit syntaxes (``"limit"`` for
    ``LIMIT n``, ``"fetch"`` for ``FETCH FIRST n ROWS ONLY``) with
    ``preferred_limit`` being what the renderer emits; ``concat_operator``
    is whether ``||`` concatenates strings (on MySQL it is logical OR);
    ``strict_casts`` is whether comparing across types is an error
    rather than a silent coercion; ``functions`` the scalar/aggregate
    functions the engine provides; ``reserved`` the words that cannot be
    bare identifiers.  ``boolean_idiom`` and ``date_idiom`` are
    documentation-level facts rendered into the capability table.
    """

    name: str
    ident_quotes: frozenset
    preferred_quote: str
    limit_forms: frozenset
    preferred_limit: str
    concat_operator: bool
    strict_casts: bool
    functions: frozenset
    reserved: frozenset
    boolean_idiom: str
    date_idiom: str


SQLITE = DialectProfile(
    name="sqlite",
    ident_quotes=frozenset('"`['),
    preferred_quote='"',
    limit_forms=frozenset({"limit"}),
    preferred_limit="limit",
    concat_operator=True,
    strict_casts=False,
    functions=SQLITE_FUNCTIONS | frozenset({
        "GROUP_CONCAT", "TOTAL", "RANDOM",
    }),
    reserved=RESERVED_WORDS["sqlite"],
    boolean_idiom="integers 0/1",
    date_idiom="STRFTIME('%Y', col)",
)

POSTGRES = DialectProfile(
    name="postgres",
    ident_quotes=frozenset('"'),
    preferred_quote='"',
    limit_forms=frozenset({"limit", "fetch"}),
    preferred_limit="fetch",
    concat_operator=True,
    strict_casts=True,
    functions=frozenset({
        "ABS", "AGE", "CEIL", "CEILING", "CHAR_LENGTH", "COALESCE",
        "CONCAT", "CONCAT_WS", "DATE_PART", "DATE_TRUNC", "EXTRACT",
        "FLOOR", "GREATEST", "INITCAP", "LEAST", "LEFT", "LENGTH",
        "LOWER", "LTRIM", "MD5", "NOW", "NULLIF", "POSITION", "RANDOM",
        "REPEAT", "REPLACE", "REVERSE", "RIGHT", "ROUND", "RTRIM",
        "SIGN", "STRING_AGG", "STRPOS", "SUBSTR", "SUBSTRING",
        "TO_CHAR", "TO_DATE", "TO_NUMBER", "TRIM", "UPPER",
    }),
    reserved=RESERVED_WORDS["postgres"],
    boolean_idiom="TRUE/FALSE literals",
    date_idiom="EXTRACT(YEAR FROM col) / TO_CHAR(col, 'YYYY')",
)

MYSQL = DialectProfile(
    name="mysql",
    ident_quotes=frozenset("`"),
    preferred_quote="`",
    limit_forms=frozenset({"limit"}),
    preferred_limit="limit",
    concat_operator=False,
    strict_casts=False,
    functions=frozenset({
        "ABS", "CEIL", "CEILING", "CHAR_LENGTH", "COALESCE", "CONCAT",
        "CONCAT_WS", "CURDATE", "DATEDIFF", "DATE_FORMAT", "DAY",
        "FLOOR", "FORMAT", "GREATEST", "GROUP_CONCAT", "IFNULL",
        "INSTR", "LEAST", "LEFT", "LENGTH", "LOCATE", "LOWER", "LTRIM",
        "MD5", "MONTH", "NOW", "NULLIF", "RAND", "REPEAT", "REPLACE",
        "REVERSE", "RIGHT", "ROUND", "RTRIM", "SIGN", "STR_TO_DATE",
        "SUBSTR", "SUBSTRING", "TRIM", "UPPER", "YEAR",
    }),
    reserved=RESERVED_WORDS["mysql"],
    boolean_idiom="integers 0/1 (TRUE/FALSE aliases)",
    date_idiom="DATE_FORMAT(col, '%Y') / YEAR(col)",
)

#: dialect name -> profile.
PROFILES = {p.name: p for p in (SQLITE, POSTGRES, MYSQL)}

#: Every function any profiled dialect provides.  A call outside this
#: union is a hallucination (``sql.unknown-function``); a call inside it
#: but missing from the target profile is a *portability* finding
#: (``dlct.function-availability``).
KNOWN_FUNCTIONS = frozenset().union(*(p.functions for p in PROFILES.values()))

#: (function, target dialect) -> the portable rewrite named in fix hints.
FUNCTION_REWRITES = {
    ("IFNULL", "postgres"): "COALESCE(a, b)",
    ("GROUP_CONCAT", "postgres"): "STRING_AGG(expr, ',')",
    ("STRING_AGG", "sqlite"): "GROUP_CONCAT(expr)",
    ("STRING_AGG", "mysql"): "GROUP_CONCAT(expr SEPARATOR ',')",
    ("STRFTIME", "postgres"): "TO_CHAR(col, 'YYYY')",
    ("STRFTIME", "mysql"): "DATE_FORMAT(col, '%Y')",
    ("INSTR", "postgres"): "STRPOS(str, sub)",
    ("IIF", "postgres"): "CASE WHEN cond THEN a ELSE b END",
    ("IIF", "mysql"): "IF(cond, a, b)",
    ("RANDOM", "mysql"): "RAND()",
    ("RAND", "postgres"): "RANDOM()",
    ("RAND", "sqlite"): "RANDOM()",
    ("DATE_FORMAT", "postgres"): "TO_CHAR(col, format)",
    ("DATE_FORMAT", "sqlite"): "STRFTIME(format, col)",
    ("TO_CHAR", "mysql"): "DATE_FORMAT(col, format)",
    ("TO_CHAR", "sqlite"): "STRFTIME(format, col)",
    ("LOCATE", "postgres"): "STRPOS(str, sub)",
    ("JULIANDAY", "postgres"): "EXTRACT(EPOCH FROM col)",
}

#: Rule catalogue: id -> one-line description (rendered by docs and CLI).
DIALECT_RULES = {
    "dlct.limit-form":
        "the row-limit syntax is not portable to the target dialect",
    "dlct.reserved-identifier":
        "a bare identifier is a reserved word on the target dialect",
    "dlct.identifier-quoting":
        "the identifier quoting style is illegal on the target dialect",
    "dlct.string-concat":
        "|| concatenation misbehaves or fails on the target dialect",
    "dlct.function-availability":
        "a function another dialect provides is missing on the target",
    "dlct.implicit-cast":
        "a cross-type comparison the target dialect rejects",
    "dlct.integer-division":
        "integer / integer returns a DECIMAL on the target dialect",
    "dlct.substr-args":
        "SUBSTR argument semantics differ on the target dialect",
    "dlct.string-escape":
        "a backslash in a string literal is an escape on the target",
    "dlct.having-alias":
        "HAVING references a select alias the target dialect rejects",
}

#: dlct rules whose error-severity findings certainly doom execution on
#: the target engine (guard-eligible, mirroring sqlcheck's FATAL_RULES).
DIALECT_FATAL_RULES = frozenset({
    "dlct.limit-form",
    "dlct.reserved-identifier",
    "dlct.identifier-quoting",
    "dlct.string-concat",
    "dlct.function-availability",
    "dlct.implicit-cast",
    "dlct.having-alias",
})

register_fatal_rules(DIALECT_FATAL_RULES)


def get_profile(dialect: str) -> DialectProfile:
    """The profile for ``dialect``; raises ``ValueError`` on unknowns."""
    profile = PROFILES.get(dialect)
    if profile is None:
        raise ValueError(
            f"unknown dialect {dialect!r}; expected one of "
            f"{', '.join(sorted(PROFILES))}"
        )
    return profile


class DialectAnalyzer:
    """Schema-aware analyzer with a dialect-portability layer.

    Runs the base :class:`~repro.analysis.sqlcheck.SQLAnalyzer` and the
    ``dlct.*`` portability rules against one target dialect.  With the
    default ``sqlite`` target this is behaviour-identical to the base
    analyzer on every statement the historical grammar accepted (the
    only sqlite-target dlct finding is the ANSI ``FETCH FIRST`` form,
    which previously failed to parse).
    """

    def __init__(self, schema: Schema, dialect: str = "sqlite"):
        self.schema = schema
        self.dialect = dialect
        self.profile = get_profile(dialect)
        self._base = SQLAnalyzer(schema)

    def analyze(self, sql: str) -> list:
        """All diagnostics for ``sql``: base rules plus ``dlct.*``."""
        base = self._base.analyze(sql)
        try:
            query = parse_sql(sql)
        except SQLError:
            return base
        base = self._adjust_base(base)
        run = _DialectRun(self.profile, self.schema, sql, query)
        dialect_diags = run.check()
        if self.dialect != "sqlite":
            obs.count("analysis.dialect.checked", dialect=self.dialect)
        for diag in dialect_diags:
            obs.count(
                "analysis.dialect.finding",
                dialect=self.dialect, rule=diag.rule,
            )
        return base + dialect_diags

    def is_statically_doomed(self, sql: str) -> bool:
        """True when the target engine is certain to refuse ``sql``."""
        return bool(fatal_diagnostics(self.analyze(sql)))

    def _adjust_base(self, diagnostics: list) -> list:
        """Re-read base findings through the target dialect's surface."""
        if self.dialect == "sqlite":
            return diagnostics
        kept = []
        for diag in diagnostics:
            if diag.rule == "sql.unknown-function":
                name = str(diag.fix_hint.get("function", "")).upper()
                if name in self.profile.functions:
                    continue  # the target dialect does provide it
                diag.message = f"no such function on {self.dialect}: {name}"
            if diag.rule == "sql.type-mismatch" and self.profile.strict_casts:
                continue  # superseded by the fatal dlct.implicit-cast
            kept.append(diag)
        return kept


def analyze_dialect(sql: str, schema: Schema, dialect: str) -> list:
    """One-shot convenience over :class:`DialectAnalyzer`."""
    return DialectAnalyzer(schema, dialect=dialect).analyze(sql)


class _DialectRun:
    """State for one dialect check: profile, source text, findings."""

    def __init__(self, profile: DialectProfile, schema: Schema, sql: str,
                 query: Query):
        self.profile = profile
        self.schema = schema
        self.sql = sql
        self.query = query
        self.diagnostics: list = []
        self._seen: set = set()

    def check(self) -> list:
        self._check_token_stream()
        self._check_query(self.query, ())
        return self.diagnostics

    # -- reporting ---------------------------------------------------------

    def report(self, rule: str, message: str, severity: str = "error",
               span: Optional[Span] = None, **fix_hint) -> None:
        if (rule, message) in self._seen:
            return
        self._seen.add((rule, message))
        fix_hint = {"dialect": self.profile.name, **fix_hint}
        self.diagnostics.append(Diagnostic(
            rule=rule, message=message, severity=severity, span=span,
            fix_hint=fix_hint,
        ))

    # -- token-level rules -------------------------------------------------

    def _check_token_stream(self) -> None:
        """Quoting-style and reserved-word checks need raw token text."""
        try:
            tokens = tokenize(self.sql)
        except SQLError:  # pragma: no cover - query already parsed
            return
        reserved = {
            name.lower(): name for name in self._identifier_names()
            if name.upper() in self.profile.reserved
            and name.upper() not in KEYWORDS
        }
        for tok in tokens:
            if tok.kind is not TokenKind.IDENT:
                continue
            quote = self.sql[tok.position]
            if quote in _QUOTE_STYLE:
                if quote not in self.profile.ident_quotes:
                    q = self.profile.preferred_quote
                    self.report(
                        "dlct.identifier-quoting",
                        f"{_QUOTE_STYLE[quote]} identifier quoting is not "
                        f"valid on {self.profile.name}",
                        span=Span(col=tok.position,
                                  length=len(tok.value) + 2),
                        identifier=tok.value,
                        rewrite=f"{q}{tok.value}{q}",
                    )
                continue
            name = reserved.get(tok.value.lower())
            if name is not None:
                q = self.profile.preferred_quote
                self.report(
                    "dlct.reserved-identifier",
                    f"identifier {name!r} is a reserved word on "
                    f"{self.profile.name} and must be quoted",
                    span=Span(col=tok.position, length=len(tok.value)),
                    identifier=name,
                    rewrite=f"{q}{name}{q}",
                )

    def _identifier_names(self) -> set:
        """Every name the query uses as an identifier."""
        names: set = set()
        for node in walk(self.query):
            if isinstance(node, TableRef):
                names.add(node.name)
                if node.alias:
                    names.add(node.alias)
            elif isinstance(node, SubquerySource):
                if node.alias:
                    names.add(node.alias)
            elif isinstance(node, SelectItem):
                if node.alias:
                    names.add(node.alias)
            elif isinstance(node, ColumnRef):
                names.add(node.column)
                if node.table:
                    names.add(node.table)
            elif isinstance(node, Star):
                if node.table:
                    names.add(node.table)
        return names

    # -- query / core traversal --------------------------------------------

    def _check_query(self, query: Query, outer: tuple) -> None:
        for core in query.all_cores():
            self._check_core(core, outer)

    def _check_core(self, core: SelectCore, outer: tuple) -> None:
        bindings: dict = {}
        subqueries: list = []
        if core.from_clause is not None:
            for source in core.from_clause.sources():
                if isinstance(source, TableRef):
                    key = (source.name.lower()
                           if self.schema.has_table(source.name) else None)
                    bindings[source.binding()] = key
                elif isinstance(source, SubquerySource):
                    bindings[source.binding() or "<derived>"] = None
                    subqueries.append(source.query)
        scope = _Scope((bindings,) + outer, self.schema)
        for sub in subqueries:
            self._check_query(sub, ())
        self._check_limit_form(core)
        self._check_having_alias(core, scope)
        for expr in self._core_exprs(core):
            for node in _clause_nodes(expr):
                if isinstance(node, Subquery):
                    self._check_query(node.query, scope.chain)
                elif isinstance(node, BinaryOp):
                    self._check_binary_op(node, scope)
                elif isinstance(node, FuncCall):
                    self._check_function(node)
                elif isinstance(node, Comparison):
                    self._check_comparison(node, scope)
                elif isinstance(node, Literal):
                    self._check_string_literal(node)

    def _core_exprs(self, core: SelectCore):
        for item in core.items:
            yield item.expr
        if core.from_clause is not None:
            for join in core.from_clause.joins:
                if join.on is not None:
                    yield join.on
        if core.where is not None:
            yield core.where
        for expr in core.group_by:
            yield expr
        if core.having is not None:
            yield core.having
        for item in core.order_by:
            yield item.expr

    # -- per-construct rules -----------------------------------------------

    def _check_limit_form(self, core: SelectCore) -> None:
        if core.limit is None:
            return
        form = core.limit_form
        if form not in self.profile.limit_forms:
            self.report(
                "dlct.limit-form",
                f"FETCH FIRST ... ROWS ONLY is not supported on "
                f"{self.profile.name}",
                rewrite=f"LIMIT {core.limit}",
            )
        elif form != self.profile.preferred_limit:
            self.report(
                "dlct.limit-form",
                f"LIMIT is a {self.profile.name} extension; the portable "
                f"ANSI form is FETCH FIRST n ROWS ONLY",
                severity="warning",
                rewrite=f"FETCH FIRST {core.limit} ROWS ONLY",
            )

    def _check_having_alias(self, core: SelectCore, scope: _Scope) -> None:
        if core.having is None or not self.profile.strict_casts:
            return
        aliases = {
            item.alias.lower(): item.alias
            for item in core.items if item.alias
        }
        if not aliases:
            return
        for node in _clause_nodes(core.having):
            if not isinstance(node, ColumnRef) or node.table:
                continue
            alias = aliases.get(node.column.lower())
            if alias is None:
                continue
            if scope.has_opaque():
                continue  # might be a real column of an opaque source
            if any(scope.holders(b, node.column) for b in scope.chain):
                continue  # resolves as a real column everywhere
            self.report(
                "dlct.having-alias",
                f"HAVING references select alias {alias!r}, which "
                f"{self.profile.name} does not allow",
                rewrite="repeat the aliased expression inside HAVING",
                identifier=alias,
            )

    def _check_binary_op(self, op: BinaryOp, scope: _Scope) -> None:
        if op.op == "||":
            if not self.profile.concat_operator:
                self.report(
                    "dlct.string-concat",
                    f"|| is logical OR on {self.profile.name}, not string "
                    f"concatenation",
                    rewrite="CONCAT(a, b)",
                )
            elif (self.profile.strict_casts
                  and self._numeric_operand(op.left, scope)
                  and self._numeric_operand(op.right, scope)):
                self.report(
                    "dlct.string-concat",
                    f"operator does not exist on {self.profile.name}: "
                    f"integer || integer",
                    rewrite="cast the operands to text or use CONCAT(a, b)",
                )
        elif op.op == "/" and self.profile.name == "mysql":
            if (self._integer_operand(op.left, scope)
                    and self._integer_operand(op.right, scope)):
                self.report(
                    "dlct.integer-division",
                    "integer / integer returns a DECIMAL on mysql, not a "
                    "truncated integer",
                    severity="warning",
                    rewrite="use the DIV operator for integer division",
                )

    def _check_function(self, call: FuncCall) -> None:
        name = call.name.upper()
        if (self.profile.name != "sqlite"
                and name in KNOWN_FUNCTIONS
                and name not in self.profile.functions):
            rewrite = FUNCTION_REWRITES.get((name, self.profile.name))
            self.report(
                "dlct.function-availability",
                f"function {name} does not exist on {self.profile.name}",
                rewrite=rewrite or "use a function the target provides",
                function=name,
                error_class="function_hallucination",
            )
        if (self.profile.strict_casts
                and name in ("SUBSTR", "SUBSTRING")
                and len(call.args) >= 2):
            start = call.args[1]
            if (isinstance(start, Literal) and start.kind == "number"
                    and isinstance(start.value, (int, float))
                    and start.value < 0):
                self.report(
                    "dlct.substr-args",
                    f"{name} with a negative start counts from the end on "
                    f"sqlite but not on {self.profile.name}",
                    severity="warning",
                    rewrite="compute the start from LENGTH(str) instead",
                )

    def _check_comparison(self, cmp: Comparison, scope: _Scope) -> None:
        if not self.profile.strict_casts:
            return
        for column_side, other in ((cmp.left, cmp.right),
                                   (cmp.right, cmp.left)):
            if not isinstance(column_side, ColumnRef):
                continue
            if not isinstance(other, Literal):
                continue
            resolved = scope.resolve(column_side)
            if resolved is None:
                continue
            if (resolved.col_type in ("integer", "real")
                    and other.kind == "string"
                    and not _numeric_text(other.value)):
                self.report(
                    "dlct.implicit-cast",
                    f"invalid input syntax on {self.profile.name}: "
                    f"{resolved.col_type} column {column_side.column!r} "
                    f"compared with non-numeric string {other.value!r}",
                    column=column_side.column,
                    rewrite="compare against a numeric literal",
                )
            elif (resolved.col_type == "text"
                  and other.kind == "number"):
                self.report(
                    "dlct.implicit-cast",
                    f"operator does not exist on {self.profile.name}: "
                    f"text {cmp.op} numeric (column "
                    f"{column_side.column!r})",
                    column=column_side.column,
                    rewrite=f"quote the literal: '{other.value}'",
                )

    def _check_string_literal(self, lit: Literal) -> None:
        if self.profile.name != "mysql" or lit.kind != "string":
            return
        if isinstance(lit.value, str) and "\\" in lit.value:
            self.report(
                "dlct.string-escape",
                "backslash is an escape character in mysql string "
                "literals",
                severity="warning",
                rewrite="double the backslash (\\\\) or use "
                        "NO_BACKSLASH_ESCAPES",
            )

    # -- operand typing helpers ---------------------------------------------

    def _numeric_operand(self, node: Node, scope: _Scope) -> bool:
        if isinstance(node, Literal):
            return node.kind == "number"
        if isinstance(node, ColumnRef):
            resolved = scope.resolve(node)
            return (resolved is not None
                    and resolved.col_type in ("integer", "real"))
        if isinstance(node, BinaryOp) and node.op == "||":
            return False
        return False

    def _integer_operand(self, node: Node, scope: _Scope) -> bool:
        if isinstance(node, Literal):
            return node.kind == "number" and isinstance(node.value, int)
        if isinstance(node, ColumnRef):
            resolved = scope.resolve(node)
            return resolved is not None and resolved.col_type == "integer"
        return False
