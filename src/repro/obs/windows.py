"""Sliding-window metrics: trailing-window rates and latency quantiles.

The cumulative :class:`~repro.obs.metrics.MetricsRegistry` answers
"since boot"; this module answers "right now".  Each primitive is a
ring of per-interval slots covering the trailing window — a counter
slot is one float, a histogram slot is one bucketed
:class:`~repro.obs.metrics.HistogramSummary` — lazily invalidated
against an injectable monotonic clock (the same
:class:`~repro.llm.resilient.Clock` surface the admission controller
uses), so rotation needs no background thread and tests drive it
deterministically with :class:`~repro.llm.resilient.FakeClock`.

Staleness is tracked per slot by the absolute interval index it last
held: a writer landing on a recycled slot resets it first, so a window
that saw no traffic for a full rotation reads zero without anyone
having swept it.  Observations age out at slot granularity — the
window is "the last ``window_s`` seconds, rounded down to the current
``resolution_s`` interval".

:class:`WindowedMetrics` keys counters and histograms by the same
canonical ``name{labels}`` strings as the cumulative registry, so the
``/v1/metrics`` payload and ``repro top`` parse both sides with one
:func:`~repro.obs.metrics.parse_metric_key`.
"""

from __future__ import annotations

from threading import Lock
from typing import Optional

from repro.llm.resilient import Clock, SystemClock
from repro.obs.metrics import (
    LATENCY_BUCKET_BOUNDS_MS,
    HistogramSummary,
    metric_key,
)


def _slot_count(window_s: float, resolution_s: float) -> int:
    if window_s <= 0 or resolution_s <= 0:
        raise ValueError("window_s and resolution_s must be positive")
    slots = round(window_s / resolution_s)
    if slots < 1:
        raise ValueError("resolution_s must divide the window into "
                         ">= 1 slots")
    return int(slots)


class WindowedCounter:
    """A rate counter over the trailing ``window_s`` seconds."""

    def __init__(self, window_s: float = 60.0, resolution_s: float = 1.0,
                 clock: Optional[Clock] = None):
        self.window_s = float(window_s)
        self.resolution_s = float(resolution_s)
        self.clock = clock or SystemClock()
        slots = _slot_count(window_s, resolution_s)
        self._values = [0.0] * slots
        #: Absolute interval index each slot last belonged to; -1 = never.
        self._marks = [-1] * slots
        self._lock = Lock()

    def _interval(self) -> int:
        return int(self.clock.monotonic() // self.resolution_s)

    def add(self, value: float = 1.0) -> None:
        """Fold ``value`` into the current interval's slot."""
        with self._lock:
            interval = self._interval()
            index = interval % len(self._values)
            if self._marks[index] != interval:
                self._marks[index] = interval
                self._values[index] = 0.0
            self._values[index] += value

    def total(self) -> float:
        """Sum of observations still inside the window."""
        with self._lock:
            interval = self._interval()
            horizon = interval - len(self._values)
            return sum(
                value
                for mark, value in zip(self._marks, self._values)
                if horizon < mark <= interval
            )

    def rate(self) -> float:
        """Observations per second over the window."""
        return self.total() / self.window_s


class WindowedHistogram:
    """A bucketed latency histogram over the trailing window.

    Each slot is one :class:`HistogramSummary` with the same fixed
    bounds; :meth:`summary` merges the live slots into a single summary
    whose ``quantile`` gives streaming p50/p95/p99 for the window.
    """

    def __init__(self, bounds: tuple = LATENCY_BUCKET_BOUNDS_MS,
                 window_s: float = 60.0, resolution_s: float = 1.0,
                 clock: Optional[Clock] = None):
        self.bounds = tuple(bounds)
        self.window_s = float(window_s)
        self.resolution_s = float(resolution_s)
        self.clock = clock or SystemClock()
        slots = _slot_count(window_s, resolution_s)
        self._summaries = [
            HistogramSummary(bounds=self.bounds) for _ in range(slots)
        ]
        self._marks = [-1] * slots
        self._lock = Lock()

    def _interval(self) -> int:
        return int(self.clock.monotonic() // self.resolution_s)

    def observe(self, value: float) -> None:
        """Fold one observation into the current interval's slot."""
        with self._lock:
            interval = self._interval()
            index = interval % len(self._summaries)
            if self._marks[index] != interval:
                self._marks[index] = interval
                self._summaries[index] = HistogramSummary(bounds=self.bounds)
            self._summaries[index].add(value)

    def summary(self) -> HistogramSummary:
        """One merged summary of every observation still in the window."""
        merged = HistogramSummary(bounds=self.bounds)
        with self._lock:
            interval = self._interval()
            horizon = interval - len(self._summaries)
            for mark, slot in zip(self._marks, self._summaries):
                if horizon < mark <= interval:
                    merged.merge(slot)
        return merged


class WindowedMetrics:
    """The sliding-window twin of the cumulative metrics registry.

    Counters and histograms are keyed by the canonical ``name{labels}``
    strings of :func:`~repro.obs.metrics.metric_key`; every key gets its
    own ring sharing this registry's window, resolution, bounds, and
    clock.  ``snapshot`` is JSON-ready and deterministically ordered.
    """

    def __init__(self, window_s: float = 60.0, resolution_s: float = 1.0,
                 bounds: tuple = LATENCY_BUCKET_BOUNDS_MS,
                 clock: Optional[Clock] = None):
        _slot_count(window_s, resolution_s)  # validate early
        self.window_s = float(window_s)
        self.resolution_s = float(resolution_s)
        self.bounds = tuple(bounds)
        self.clock = clock or SystemClock()
        self._counters: dict = {}
        self._histograms: dict = {}
        self._lock = Lock()

    def _counter(self, key: str) -> WindowedCounter:
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = WindowedCounter(
                    self.window_s, self.resolution_s, clock=self.clock
                )
            return counter

    def _histogram(self, key: str) -> WindowedHistogram:
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = WindowedHistogram(
                    self.bounds, self.window_s, self.resolution_s,
                    clock=self.clock,
                )
            return histogram

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment a windowed rate counter."""
        self._counter(metric_key(name, labels)).add(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Fold one observation into a windowed histogram."""
        self._histogram(metric_key(name, labels)).observe(value)

    def counter_total(self, name: str, **labels) -> float:
        """One windowed counter's in-window total (0.0 when unseen)."""
        with self._lock:
            counter = self._counters.get(metric_key(name, labels))
        return counter.total() if counter is not None else 0.0

    def histogram(self, name: str, **labels) -> HistogramSummary:
        """The merged in-window summary for one histogram key."""
        with self._lock:
            histogram = self._histograms.get(metric_key(name, labels))
        if histogram is None:
            return HistogramSummary(bounds=self.bounds)
        return histogram.summary()

    def snapshot(self) -> dict:
        """JSON-ready windowed truth, deterministically ordered.

        Counters report ``{"total", "rate"}`` over the window;
        histograms report the full bucketed summary (count / total /
        min / max / bounds / buckets / p50 / p95 / p99).
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "window_s": self.window_s,
            "resolution_s": self.resolution_s,
            "counters": {
                key: {
                    "total": round(counter.total(), 6),
                    "rate": round(counter.rate(), 6),
                }
                for key, counter in sorted(counters.items())
            },
            "histograms": {
                key: histogram.summary().as_dict()
                for key, histogram in sorted(histograms.items())
            },
        }
