"""The active-observer contextvar and the instrumentation helpers.

Instrumented code never holds a reference to a tracer or registry — it
calls the module-level helpers (:func:`span`, :func:`count`,
:func:`event`, ...) which consult one :class:`contextvars.ContextVar`.
When no :class:`Observer` is active each helper is a single contextvar
read followed by an immediate return, the same near-no-op discipline as
:func:`repro.eval.timing.stage`, so shipping instrumentation in hot
paths costs nothing when telemetry is off.

The engine activates an observer *per task* via :meth:`Observer.task`
(contextvars are per-thread, so worker threads must install it inside
the task, not around the pool); :meth:`Observer.activate` scopes it
around arbitrary non-engine work such as a one-off ``translate``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.obs.log import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunTelemetry
from repro.obs.trace import GLOBAL_LANE, Span, Tracer
from repro.utils.context import current_task_lane

_OBSERVER: ContextVar[Optional["Observer"]] = ContextVar(
    "repro_observer", default=None
)


class Observer:
    """One run's telemetry: a tracer, a metrics registry, and a logger."""

    def __init__(
        self,
        seed: int = 0,
        log_level: str = "info",
        log_sink: Optional[Callable] = None,
    ):
        self.tracer = Tracer(seed=seed)
        self.metrics = MetricsRegistry()
        self.logger = StructuredLogger(level=log_level, sink=log_sink)

    @contextmanager
    def task(self, lane: str) -> Iterator[Span]:
        """Activate for one task and scope its root span."""
        token = _OBSERVER.set(self)
        span = self.tracer.start_span("task", lane=lane)
        try:
            yield span
        finally:
            self.tracer.end_span(span)
            _OBSERVER.reset(token)

    @contextmanager
    def activate(self) -> Iterator["Observer"]:
        """Activate without opening a span (non-engine code paths)."""
        token = _OBSERVER.set(self)
        try:
            yield self
        finally:
            _OBSERVER.reset(token)

    def log(self, name: str, level: str = "info", **fields) -> None:
        """Record a structured event at the current lane and time."""
        span = self.tracer.current_span()
        lane = (
            span.lane
            if span is not None
            else current_task_lane() or GLOBAL_LANE
        )
        self.logger.log(
            name, level=level, lane=lane, t=self.tracer.now(), fields=fields
        )

    def telemetry(self) -> RunTelemetry:
        """The typed roll-up of this observer's metrics."""
        return RunTelemetry.from_metrics(
            self.metrics.snapshot(), events=len(self.logger)
        )


def current_observer() -> Optional[Observer]:
    """The active observer, or None when telemetry is off."""
    return _OBSERVER.get()


@contextmanager
def span(name: str, **attrs) -> Iterator[Optional[Span]]:
    """Scope a child span (yields None when telemetry is off)."""
    observer = _OBSERVER.get()
    if observer is None:
        yield None
        return
    opened = observer.tracer.start_span(name, **attrs)
    try:
        yield opened
    finally:
        observer.tracer.end_span(opened)


def start_span(name: str, **attrs) -> Optional[Span]:
    """Imperative twin of :func:`span` for pre-existing try/finally shapes."""
    observer = _OBSERVER.get()
    if observer is None:
        return None
    return observer.tracer.start_span(name, **attrs)


def end_span(opened: Optional[Span], **attrs) -> None:
    """Close a span from :func:`start_span` (no-op on None)."""
    if opened is None:
        return
    observer = _OBSERVER.get()
    if observer is not None:
        observer.tracer.end_span(opened, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span, if any."""
    observer = _OBSERVER.get()
    if observer is None:
        return
    opened = observer.tracer.current_span()
    if opened is not None:
        opened.attrs.update(attrs)


def count(name: str, value: int = 1, **labels) -> None:
    """Increment a counter on the active registry."""
    observer = _OBSERVER.get()
    if observer is not None:
        observer.metrics.count(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active registry."""
    observer = _OBSERVER.get()
    if observer is not None:
        observer.metrics.gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation on the active registry."""
    observer = _OBSERVER.get()
    if observer is not None:
        observer.metrics.observe(name, value, **labels)


def event(name: str, level: str = "info", **fields) -> None:
    """Record a structured event on the active logger."""
    observer = _OBSERVER.get()
    if observer is not None:
        observer.log(name, level=level, **fields)
