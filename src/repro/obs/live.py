"""``repro.obs.live`` — continuous telemetry for the long-lived service.

The batch observer answers "what did this run do"; this layer answers
"what is the service doing *right now*", from four always-on parts:

* **windowed metrics** (:class:`~repro.obs.windows.WindowedMetrics`) —
  trailing-window request rates and latency quantiles alongside the
  cumulative registry, so ``/v1/metrics`` reports last-60-seconds
  truth, not since-boot averages;
* a **per-tenant cost ledger** (:class:`CostLedger`) — prompt and
  completion tokens, provider calls, repair rounds, sheds, and
  cache-served answers per tenant, with periodic snapshots, behind
  ``GET /v1/tenants/{id}/usage``;
* **SLO burn-rate tracking** (:class:`SLOTracker`) — availability and
  latency objectives per tenant with fast/slow multi-window burn rates,
  emitting edge-triggered ``slo.burn`` events into the observer's
  structured log, behind ``GET /v1/status``;
* a **bounded trace store with tail-based sampling**
  (:class:`TraceStore`) — every served request's span tree, captured in
  the JSONL schema-v1 span shape; errors and slow requests are always
  retained, healthy traffic is sampled, behind
  ``GET /v1/trace/{request_id}``.

Determinism contract: nothing here opens spans or otherwise perturbs
the request's observed execution.  Trace capture happens *after* the
request's task scope has closed, reading finished spans off the
observer's tracer by lane, so a served translate's span tree stays
byte-identical to the batch engine's (pinned by
``tests/serve/test_trace_determinism.py`` with the live layer on).
All clocks are injectable, so tests drive windows, ledger snapshots,
and burn rates with :class:`~repro.llm.resilient.FakeClock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Optional

from repro.llm.resilient import Clock, SystemClock
from repro.obs.metrics import LATENCY_BUCKET_BOUNDS_MS
from repro.obs.windows import WindowedCounter, WindowedMetrics

#: Trace retention reasons (tail-based sampling verdicts).
RETAIN_ERROR = "error"
RETAIN_SLOW = "slow"
RETAIN_SAMPLED = "sampled"


@dataclass(frozen=True)
class LiveConfig:
    """The knobs of one :class:`LiveTelemetry` layer.

    ``window_s``/``resolution_s`` size the metrics window;
    ``slow_ms`` is the tail-sampling latency threshold above which a
    trace is always retained; ``sample_every`` keeps every Nth healthy
    trace (1 keeps all until ring eviction); ``prune_lanes`` forgets a
    request's spans from the tracer once captured, bounding a
    long-lived process's span memory (off by default so batch-style
    observers keep their full trace).
    """

    window_s: float = 60.0
    resolution_s: float = 1.0
    latency_bounds_ms: tuple = LATENCY_BUCKET_BOUNDS_MS
    trace_capacity: int = 256
    slow_ms: float = 1000.0
    sample_every: int = 1
    snapshot_every_s: float = 60.0
    snapshots_kept: int = 60
    prune_lanes: bool = False

    def __post_init__(self):
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")


@dataclass(frozen=True)
class SLOObjectives:
    """One tenant's service-level objectives.

    ``availability`` is the target fraction of non-failed responses
    (5xx and 429 count against it); the latency objective asks that at
    least ``latency_target`` of requests finish under ``latency_ms``.
    Burn rates are computed over a fast and a slow window; ``slo.burn``
    fires when *both* exceed ``burn_alert`` (the classic multi-window
    guard against paging on blips).
    """

    availability: float = 0.999
    latency_target: float = 0.99
    latency_ms: float = 2000.0
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    burn_alert: float = 1.0

    def __post_init__(self):
        for name in ("availability", "latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")


# ---------------------------------------------------------------------------
# Cost ledger
# ---------------------------------------------------------------------------


@dataclass
class TenantUsage:
    """Cumulative cost record for one tenant."""

    requests: int = 0
    errors: int = 0
    shed: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    llm_calls: int = 0
    repair_rounds: int = 0
    cache_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.prompt_tokens + self.completion_tokens,
            "llm_calls": self.llm_calls,
            "repair_rounds": self.repair_rounds,
            "cache_hits": self.cache_hits,
        }


class CostLedger:
    """Per-tenant token/call/repair accounting with periodic snapshots.

    Updates are driven by request completions — no background thread:
    each :meth:`record` also checks whether a snapshot of all tenants
    is due (``snapshot_every_s`` on the injected clock) and appends it
    to a bounded history, so ``/v1/tenants/{id}/usage`` can show both
    the cumulative truth and its recent trajectory.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 snapshot_every_s: float = 60.0, keep: int = 60):
        self.clock = clock or SystemClock()
        self.snapshot_every_s = float(snapshot_every_s)
        self.keep = int(keep)
        self._usage: dict = {}
        self._snapshots: list = []
        self._epoch = self.clock.monotonic()
        self._last_snapshot = self._epoch
        self._lock = Lock()

    def record(self, tenant: str, *, error: bool = False,
               shed: bool = False, prompt_tokens: int = 0,
               completion_tokens: int = 0, llm_calls: int = 0,
               repair_rounds: int = 0, cache_hit: bool = False) -> None:
        """Fold one completed request into the tenant's usage."""
        with self._lock:
            usage = self._usage.get(tenant)
            if usage is None:
                usage = self._usage[tenant] = TenantUsage()
            usage.requests += 1
            usage.errors += 1 if error else 0
            usage.shed += 1 if shed else 0
            usage.prompt_tokens += prompt_tokens
            usage.completion_tokens += completion_tokens
            usage.llm_calls += llm_calls
            usage.repair_rounds += repair_rounds
            usage.cache_hits += 1 if cache_hit else 0
            self._maybe_snapshot(self.clock.monotonic())

    def _maybe_snapshot(self, now: float) -> None:
        if now - self._last_snapshot < self.snapshot_every_s:
            return
        self._last_snapshot = now
        self._snapshots.append({
            "t": round(now - self._epoch, 3),
            "tenants": {
                tenant: usage.as_dict()
                for tenant, usage in sorted(self._usage.items())
            },
        })
        if len(self._snapshots) > self.keep:
            del self._snapshots[: len(self._snapshots) - self.keep]

    def usage(self, tenant: str) -> Optional[dict]:
        """One tenant's cumulative usage (None when never seen)."""
        with self._lock:
            usage = self._usage.get(tenant)
            return usage.as_dict() if usage is not None else None

    def totals(self) -> dict:
        """Every tenant's cumulative usage, sorted by tenant id."""
        with self._lock:
            return {
                tenant: usage.as_dict()
                for tenant, usage in sorted(self._usage.items())
            }

    def snapshots(self, tenant: Optional[str] = None) -> list:
        """The periodic snapshot history (optionally one tenant's)."""
        with self._lock:
            history = list(self._snapshots)
        if tenant is None:
            return history
        return [
            {"t": snap["t"], "usage": snap["tenants"][tenant]}
            for snap in history
            if tenant in snap["tenants"]
        ]


# ---------------------------------------------------------------------------
# SLO burn-rate tracking
# ---------------------------------------------------------------------------


class _ObjectiveWindows:
    """Good/total counters over one objective's fast and slow windows."""

    def __init__(self, fast_s: float, slow_s: float, clock: Clock):
        # Sixty slots per window keeps rotation cheap at any span.
        self.fast_total = WindowedCounter(fast_s, fast_s / 60.0, clock=clock)
        self.fast_bad = WindowedCounter(fast_s, fast_s / 60.0, clock=clock)
        self.slow_total = WindowedCounter(slow_s, slow_s / 60.0, clock=clock)
        self.slow_bad = WindowedCounter(slow_s, slow_s / 60.0, clock=clock)

    def record(self, bad: bool) -> None:
        self.fast_total.add(1.0)
        self.slow_total.add(1.0)
        if bad:
            self.fast_bad.add(1.0)
            self.slow_bad.add(1.0)

    @staticmethod
    def _burn(bad: float, total: float, budget: float) -> float:
        if total <= 0.0 or budget <= 0.0:
            return 0.0
        return (bad / total) / budget

    def burns(self, budget: float) -> tuple:
        """``(fast_burn, slow_burn)`` against an error budget fraction."""
        return (
            self._burn(self.fast_bad.total(), self.fast_total.total(),
                       budget),
            self._burn(self.slow_bad.total(), self.slow_total.total(),
                       budget),
        )


class _TenantSLO:
    """One tenant's objective windows and alert state."""

    def __init__(self, objectives: SLOObjectives, clock: Clock):
        self.objectives = objectives
        self.availability = _ObjectiveWindows(
            objectives.fast_window_s, objectives.slow_window_s, clock
        )
        self.latency = _ObjectiveWindows(
            objectives.fast_window_s, objectives.slow_window_s, clock
        )
        self.burning = {"availability": False, "latency": False}


class SLOTracker:
    """Multi-window burn-rate tracking across tenants.

    ``emit`` is the event hook (wired to the observer's structured
    logger): an edge-triggered warning-level ``slo.burn`` event fires
    when an objective's fast *and* slow burn rates cross
    ``burn_alert``, and an info-level ``slo.recovered`` when both drop
    back under it.
    """

    def __init__(self, objectives: Optional[SLOObjectives] = None,
                 clock: Optional[Clock] = None,
                 emit: Optional[Callable] = None):
        self.defaults = objectives or SLOObjectives()
        self.clock = clock or SystemClock()
        self.emit = emit
        self._tenants: dict = {}
        self._overrides: dict = {}
        self._lock = Lock()

    def set_objectives(self, tenant: str,
                       objectives: SLOObjectives) -> None:
        """Install per-tenant objectives (before traffic, ideally)."""
        with self._lock:
            self._overrides[tenant] = objectives
            self._tenants.pop(tenant, None)

    def _state(self, tenant: str) -> _TenantSLO:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                objectives = self._overrides.get(tenant, self.defaults)
                state = self._tenants[tenant] = _TenantSLO(
                    objectives, self.clock
                )
            return state

    def record(self, tenant: str, latency_ms: float, error: bool) -> None:
        """Fold one response into the tenant's SLIs and check burns."""
        state = self._state(tenant)
        objectives = state.objectives
        state.availability.record(bad=error)
        state.latency.record(bad=latency_ms > objectives.latency_ms)
        self._check(tenant, state, "availability", state.availability,
                    1.0 - objectives.availability)
        self._check(tenant, state, "latency", state.latency,
                    1.0 - objectives.latency_target)

    def _check(self, tenant: str, state: _TenantSLO, objective: str,
               windows: _ObjectiveWindows, budget: float) -> None:
        fast, slow = windows.burns(budget)
        alert = state.objectives.burn_alert
        burning = fast >= alert and slow >= alert
        was_burning = state.burning[objective]
        if burning == was_burning:
            return
        state.burning[objective] = burning
        if self.emit is None:
            return
        if burning:
            self.emit(
                "slo.burn", level="warning", tenant=tenant,
                objective=objective, fast_burn=round(fast, 3),
                slow_burn=round(slow, 3),
            )
        else:
            self.emit(
                "slo.recovered", level="info", tenant=tenant,
                objective=objective,
            )

    def status(self) -> dict:
        """Per-tenant SLO state for ``GET /v1/status``."""
        with self._lock:
            tenants = dict(self._tenants)
        out = {}
        for tenant, state in sorted(tenants.items()):
            objectives = state.objectives
            avail_fast, avail_slow = state.availability.burns(
                1.0 - objectives.availability
            )
            lat_fast, lat_slow = state.latency.burns(
                1.0 - objectives.latency_target
            )
            out[tenant] = {
                "availability": {
                    "target": objectives.availability,
                    "fast_burn": round(avail_fast, 3),
                    "slow_burn": round(avail_slow, 3),
                    "state": (
                        "burning" if state.burning["availability"] else "ok"
                    ),
                },
                "latency": {
                    "target": objectives.latency_target,
                    "threshold_ms": objectives.latency_ms,
                    "fast_burn": round(lat_fast, 3),
                    "slow_burn": round(lat_slow, 3),
                    "state": (
                        "burning" if state.burning["latency"] else "ok"
                    ),
                },
            }
        return out


# ---------------------------------------------------------------------------
# Trace store
# ---------------------------------------------------------------------------


class TraceStore:
    """Bounded in-memory span trees with tail-based sampling.

    Retention verdicts are rendered at completion time (tail-based):
    failed requests (HTTP status >= 400) and slow requests
    (``latency_ms >= slow_ms``) are always retained; healthy traffic is
    down-sampled to every ``sample_every``-th request.  The store is a
    ring: past ``capacity`` entries, the oldest *sampled* entry is
    evicted first, so errors and slow traces survive healthy churn.
    """

    def __init__(self, capacity: int = 256, slow_ms: float = 1000.0,
                 sample_every: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.slow_ms = float(slow_ms)
        self.sample_every = sample_every
        self._entries: dict = {}  # request_id -> entry, insertion-ordered
        self._seen = 0
        self._dropped = 0
        self._evicted = 0
        self._lock = Lock()

    def _verdict(self, status: int, latency_ms: float) -> Optional[str]:
        if status >= 400:
            return RETAIN_ERROR
        if latency_ms >= self.slow_ms:
            return RETAIN_SLOW
        if self._seen % self.sample_every == 0:
            return RETAIN_SAMPLED
        return None

    def offer(self, request_id: str, tenant: str, status: int,
              latency_ms: float, spans: list) -> Optional[str]:
        """Submit one finished request; returns the retention reason.

        ``spans`` are JSONL schema-v1 span dicts
        (:meth:`repro.obs.trace.Span.as_dict`) in ``seq`` order.
        Returns ``None`` when tail sampling dropped the trace.
        """
        with self._lock:
            self._seen += 1
            reason = self._verdict(status, latency_ms)
            if reason is None:
                self._dropped += 1
                return None
            # Re-insert so a replayed request id counts as newest.
            self._entries.pop(request_id, None)
            self._entries[request_id] = {
                "request_id": request_id,
                "tenant": tenant,
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "retained": reason,
                "spans": list(spans),
            }
            while len(self._entries) > self.capacity:
                self._evict()
            return reason

    def _evict(self) -> None:
        victim = None
        for request_id, entry in self._entries.items():
            if entry["retained"] == RETAIN_SAMPLED:
                victim = request_id
                break
        if victim is None:
            victim = next(iter(self._entries))
        del self._entries[victim]
        self._evicted += 1

    def get(self, request_id: str) -> Optional[dict]:
        """One retained trace entry, or None."""
        with self._lock:
            entry = self._entries.get(request_id)
            return dict(entry) if entry is not None else None

    def stats(self) -> dict:
        """Occupancy and sampling counters for ``/v1/metrics``."""
        with self._lock:
            retained: dict = {}
            for entry in self._entries.values():
                reason = entry["retained"]
                retained[reason] = retained.get(reason, 0) + 1
            return {
                "capacity": self.capacity,
                "stored": len(self._entries),
                "seen": self._seen,
                "dropped": self._dropped,
                "evicted": self._evicted,
                "retained": dict(sorted(retained.items())),
            }


# ---------------------------------------------------------------------------
# The composed live layer
# ---------------------------------------------------------------------------


class LiveTelemetry:
    """Windows + ledger + SLOs + trace store behind one recording surface.

    The serving core calls :meth:`record_request` once per completed
    request (every endpoint, success or error) and :meth:`capture` for
    requests that ran under a task lane.  ``observer`` is optional:
    without one, windows/ledger/SLOs still work and only span capture
    and ``slo.burn`` events are disabled.
    """

    def __init__(self, observer=None, config: Optional[LiveConfig] = None,
                 objectives: Optional[SLOObjectives] = None,
                 clock: Optional[Clock] = None):
        self.observer = observer
        self.config = config or LiveConfig()
        self.clock = clock or SystemClock()
        self.windows = WindowedMetrics(
            window_s=self.config.window_s,
            resolution_s=self.config.resolution_s,
            bounds=self.config.latency_bounds_ms,
            clock=self.clock,
        )
        self.ledger = CostLedger(
            clock=self.clock,
            snapshot_every_s=self.config.snapshot_every_s,
            keep=self.config.snapshots_kept,
        )
        self.slo = SLOTracker(
            objectives=objectives, clock=self.clock, emit=self._emit
        )
        self.traces = TraceStore(
            capacity=self.config.trace_capacity,
            slow_ms=self.config.slow_ms,
            sample_every=self.config.sample_every,
        )

    def _emit(self, name: str, level: str = "info", **fields) -> None:
        if self.observer is not None:
            self.observer.log(name, level=level, **fields)

    def record_request(self, endpoint: str, tenant: str, latency_s: float,
                       status: int, response=None,
                       track_tenant: bool = True) -> None:
        """Fold one completed request into windows, ledger, and SLOs.

        ``response`` is the wire payload when one exists — a
        :class:`~repro.api.types.TranslateResponse` contributes its
        token/call/repair record to the ledger.  ``track_tenant=False``
        skips ledger and SLO accounting (unresolvable tenants must not
        grow per-tenant state).
        """
        latency_ms = latency_s * 1000.0
        self.windows.count("serve.requests", endpoint=endpoint)
        self.windows.observe("serve.latency_ms", latency_ms,
                             endpoint=endpoint)
        if status >= 400:
            self.windows.count("serve.errors", endpoint=endpoint)
        if not track_tenant:
            return
        # 4xx client mistakes don't burn the service's error budget;
        # 5xx and 429 (we refused an answer) do.
        error = status >= 500 or status == 429
        llm_calls = getattr(response, "llm_calls", None)
        self.windows.count("serve.tenant_requests", tenant=tenant)
        self.ledger.record(
            tenant,
            error=error,
            shed=bool(getattr(response, "shed", False)),
            prompt_tokens=getattr(response, "prompt_tokens", 0),
            completion_tokens=getattr(response, "output_tokens", 0),
            llm_calls=llm_calls or 0,
            repair_rounds=getattr(response, "repair_rounds", 0),
            cache_hit=llm_calls == 0,
        )
        self.slo.record(tenant, latency_ms, error)

    def capture(self, request_id: str, tenant: str, status: int,
                latency_s: float) -> Optional[str]:
        """Capture one finished request's span tree into the store.

        Reads the finished spans off the observer's tracer by lane
        (the request id), *after* the request's task scope closed — no
        spans are opened, so the tree stays byte-identical to batch.
        With ``prune_lanes`` the tracer then forgets the lane, bounding
        span memory in a long-lived process.  Returns the retention
        reason, or None when sampled out / no observer.
        """
        if self.observer is None or not request_id:
            return None
        spans = self.observer.tracer.lane_spans(request_id)
        reason = self.traces.offer(
            request_id, tenant, status, latency_s * 1000.0,
            [span.as_dict() for span in spans],
        )
        if self.config.prune_lanes:
            self.observer.tracer.prune_lane(request_id)
        return reason

    def payload(self) -> dict:
        """The ``"live"`` section of the ``/v1/metrics`` response."""
        return {
            "windows": self.windows.snapshot(),
            "tenants": self.ledger.totals(),
            "traces": self.traces.stats(),
        }
