"""The metrics registry: counters, gauges, and histograms.

Instrumented layers report what happened — a retry, a cache hit, a
breaker opening, a degradation rung reached — as named metrics with
optional labels.  The registry is a passive accumulator: thread-safe,
allocation-light, and snapshotted into plain dicts for reporting and
the JSONL trace.

Metric keys are canonical strings — ``name`` or ``name{k=v,k2=v2}``
with labels sorted by key — so snapshots are deterministic and the
``repro report`` renderer can parse them back without a schema.

Histograms keep a bounded summary (count / total / min / max), not the
raw samples: the high-cardinality timing data lives in spans, while
histograms cover low-volume distributions like backoff waits.  A
summary constructed with fixed ``bounds`` additionally keeps one count
per bucket, which is enough to estimate quantiles (p50/p95/p99) without
retaining samples — the continuous serving telemetry
(:mod:`repro.obs.windows`) builds on that.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from threading import Lock

#: Default latency bucket upper bounds (milliseconds) for quantile
#: estimation on serving-path histograms.  Geometric-ish spacing from
#: sub-millisecond to ten seconds, the span a served request can take.
LATENCY_BUCKET_BOUNDS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def metric_key(name: str, labels: dict) -> str:
    """The canonical string key for ``name`` with ``labels``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple:
    """Invert :func:`metric_key` into ``(name, labels_dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels = {}
    for part in inner.split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


@dataclass
class HistogramSummary:
    """Bounded summary of one observed distribution.

    Without ``bounds`` this is the original count/total/min/max record.
    With ``bounds`` (ascending bucket upper bounds) it also keeps
    ``len(bounds) + 1`` bucket counts (the last is the overflow bucket)
    and can estimate quantiles by linear interpolation inside the
    bucket holding the target rank.  ``as_dict`` stays backward
    compatible: the four original keys are always present, and the
    bucket/quantile keys appear only when bounds were configured.
    """

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    bounds: tuple = ()
    buckets: list = field(default_factory=list)

    def __post_init__(self):
        self.bounds = tuple(self.bounds)
        if self.bounds and list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        if self.bounds and not self.buckets:
            self.buckets = [0] * (len(self.bounds) + 1)

    def add(self, value: float) -> None:
        """Fold one observation into the summary."""
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        if self.bounds:
            self.buckets[bisect_left(self.bounds, value)] += 1

    def merge(self, other: "HistogramSummary") -> None:
        """Fold another summary into this one (bounds must match)."""
        if other.count == 0:
            return
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.bounds} vs {other.bounds})"
            )
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        if self.bounds:
            self.buckets = [
                a + b for a, b in zip(self.buckets, other.buckets)
            ]

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before the first observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float):
        """Estimate the ``q``-quantile from the fixed buckets.

        Linear interpolation inside the bucket holding the target rank,
        clamped to the observed ``[min, max]``; the overflow bucket
        interpolates toward the observed max.  Returns ``None`` when the
        summary has no bounds (nothing to estimate from) and 0.0 before
        the first observation.
        """
        if not self.bounds:
            return None
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i else 0.0
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                position = max(0.0, rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }
        if self.bounds:
            out["bounds"] = list(self.bounds)
            out["buckets"] = list(self.buckets)
            out["p50"] = round(self.quantile(0.50), 6)
            out["p95"] = round(self.quantile(0.95), 6)
            out["p99"] = round(self.quantile(0.99), 6)
        return out


@dataclass(frozen=True)
class MetricsSnapshot:
    """A consistent point-in-time copy of a registry's contents."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def counter(self, name: str, **labels) -> int:
        """One counter's value (0 when never incremented)."""
        return self.counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all label combinations."""
        return sum(
            value
            for key, value in self.counters.items()
            if parse_metric_key(key)[0] == name
        )

    def labelled(self, name: str) -> dict:
        """``{labels_tuple_value: count}`` for a single-label counter."""
        out = {}
        for key, value in self.counters.items():
            base, labels = parse_metric_key(key)
            if base == name and labels:
                out[next(iter(labels.values()))] = value
        return out

    def as_dict(self) -> dict:
        """JSON-ready form with deterministically ordered keys."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                key: hist.as_dict()
                for key, hist in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Thread-safe accumulator for counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = Lock()

    def count(self, name: str, value: int = 1, **labels) -> None:
        """Increment a monotonic counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to its latest value."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Fold one observation into a histogram."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = HistogramSummary()
            hist.add(value)

    def snapshot(self) -> MetricsSnapshot:
        """A consistent copy of every metric."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: HistogramSummary(
                        count=h.count, total=h.total, min=h.min, max=h.max,
                        bounds=h.bounds, buckets=list(h.buckets),
                    )
                    for key, h in self._histograms.items()
                },
            )
