"""The metrics registry: counters, gauges, and histograms.

Instrumented layers report what happened — a retry, a cache hit, a
breaker opening, a degradation rung reached — as named metrics with
optional labels.  The registry is a passive accumulator: thread-safe,
allocation-light, and snapshotted into plain dicts for reporting and
the JSONL trace.

Metric keys are canonical strings — ``name`` or ``name{k=v,k2=v2}``
with labels sorted by key — so snapshots are deterministic and the
``repro report`` renderer can parse them back without a schema.

Histograms keep a bounded summary (count / total / min / max), not the
raw samples: the high-cardinality timing data lives in spans, while
histograms cover low-volume distributions like backoff waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock


def metric_key(name: str, labels: dict) -> str:
    """The canonical string key for ``name`` with ``labels``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple:
    """Invert :func:`metric_key` into ``(name, labels_dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels = {}
    for part in inner.split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


@dataclass
class HistogramSummary:
    """Bounded summary of one observed distribution."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the summary."""
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before the first observation)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A consistent point-in-time copy of a registry's contents."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def counter(self, name: str, **labels) -> int:
        """One counter's value (0 when never incremented)."""
        return self.counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all label combinations."""
        return sum(
            value
            for key, value in self.counters.items()
            if parse_metric_key(key)[0] == name
        )

    def labelled(self, name: str) -> dict:
        """``{labels_tuple_value: count}`` for a single-label counter."""
        out = {}
        for key, value in self.counters.items():
            base, labels = parse_metric_key(key)
            if base == name and labels:
                out[next(iter(labels.values()))] = value
        return out

    def as_dict(self) -> dict:
        """JSON-ready form with deterministically ordered keys."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                key: hist.as_dict()
                for key, hist in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Thread-safe accumulator for counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = Lock()

    def count(self, name: str, value: int = 1, **labels) -> None:
        """Increment a monotonic counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to its latest value."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Fold one observation into a histogram."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = HistogramSummary()
            hist.add(value)

    def snapshot(self) -> MetricsSnapshot:
        """A consistent copy of every metric."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: HistogramSummary(
                        count=h.count, total=h.total, min=h.min, max=h.max
                    )
                    for key, h in self._histograms.items()
                },
            )
