"""Render a JSONL trace as a human-readable run profile.

This is the engine behind ``repro report <trace.jsonl>``: a per-stage
latency profile, a per-hardness breakdown (task root spans carry the
hardness annotation), a stage × hardness time matrix, the telemetry
roll-up, and a text *flame summary* — the span tree aggregated by call
path with proportional bars, the terminal version of a flame graph.

Pure functions over :class:`~repro.obs.export.TraceData`; nothing here
prints (the CLI routes the returned text through the render module).
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.obs.export import TraceData
from repro.obs.metrics import MetricsSnapshot
from repro.obs.telemetry import RunTelemetry

_BAR_WIDTH = 28
_FLAME_DEPTH = 6


def _percentile(values: list, q: float) -> float:
    """Nearest-rank percentile over ``values`` (already in any order)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(math.ceil(q / 100.0 * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


def _duration(span: dict) -> float:
    end = span["end"] if span["end"] is not None else span["start"]
    return end - span["start"]


def _table(header: list, rows: list) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(c).ljust(w) for c, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def stage_profile(trace: TraceData) -> list:
    """Per-stage rows: name, count, total s, mean/p50/p95 ms."""
    from repro.eval.timing import STAGE_ORDER

    by_stage: dict[str, list] = {}
    for span in trace.named("stage:"):
        by_stage.setdefault(span["name"][len("stage:"):], []).append(
            _duration(span)
        )
    ordered = [name for name in STAGE_ORDER if name in by_stage]
    ordered += sorted(set(by_stage) - set(ordered))
    rows = []
    for name in ordered:
        durations = by_stage[name]
        rows.append(
            {
                "stage": name,
                "count": len(durations),
                "total_s": round(sum(durations), 4),
                "mean_ms": round(1000 * sum(durations) / len(durations), 3),
                "p50_ms": round(1000 * _percentile(durations, 50), 3),
                "p95_ms": round(1000 * _percentile(durations, 95), 3),
            }
        )
    return rows


def hardness_profile(trace: TraceData) -> list:
    """Per-hardness rows over task root spans: count and latency shape."""
    from repro.eval.harness import HARDNESS_ORDER

    by_hardness: dict[str, list] = {}
    for span in trace.task_spans():
        level = span["attrs"].get("hardness", "?")
        by_hardness.setdefault(level, []).append(_duration(span))
    ordered = [h for h in HARDNESS_ORDER if h in by_hardness]
    ordered += sorted(set(by_hardness) - set(ordered))
    rows = []
    for level in ordered:
        durations = by_hardness[level]
        rows.append(
            {
                "hardness": level,
                "tasks": len(durations),
                "total_s": round(sum(durations), 4),
                "mean_ms": round(1000 * sum(durations) / len(durations), 3),
                "p95_ms": round(1000 * _percentile(durations, 95), 3),
            }
        )
    return rows


def stage_hardness_matrix(trace: TraceData) -> dict:
    """``{hardness: {stage: total seconds}}`` from the span tree."""
    hardness_of_lane = {
        span["lane"]: span["attrs"].get("hardness", "?")
        for span in trace.task_spans()
    }
    matrix: dict[str, dict] = {}
    for span in trace.named("stage:"):
        level = hardness_of_lane.get(span["lane"], "?")
        row = matrix.setdefault(level, {})
        name = span["name"][len("stage:"):]
        row[name] = row.get(name, 0.0) + _duration(span)
    return matrix


def flame_summary(trace: TraceData, depth: int = _FLAME_DEPTH) -> str:
    """The span tree aggregated by call path, with proportional bars."""
    by_id = {span["id"]: span for span in trace.spans}

    def path_of(span: dict) -> tuple:
        names = [span["name"]]
        parent = span["parent"]
        while parent is not None and parent in by_id:
            names.append(by_id[parent]["name"])
            parent = by_id[parent]["parent"]
        return tuple(reversed(names))

    totals: OrderedDict[tuple, list] = OrderedDict()
    for span in trace.spans:
        path = path_of(span)
        if len(path) > depth:
            continue
        bucket = totals.setdefault(path, [0, 0.0])
        bucket[0] += 1
        bucket[1] += _duration(span)

    if not totals:
        return "(no spans)"
    root_total = max(
        (seconds for path, (_, seconds) in totals.items() if len(path) == 1),
        default=0.0,
    )
    lines = []
    for path in sorted(totals):
        count, seconds = totals[path]
        bar = (
            "#" * max(round(_BAR_WIDTH * seconds / root_total), 1)
            if root_total > 0
            else ""
        )
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(
            f"{label:<38} {count:>6}x {seconds:>9.3f}s  {bar}"
        )
    return "\n".join(lines)


def telemetry_from_trace(trace: TraceData) -> RunTelemetry:
    """Rebuild the typed telemetry roll-up from the trace's metrics line."""
    snapshot = MetricsSnapshot(
        counters=trace.metrics.get("counters", {}),
        gauges=trace.metrics.get("gauges", {}),
    )
    return RunTelemetry.from_metrics(snapshot, events=len(trace.events))


def render_report(trace: TraceData) -> str:
    """The full ``repro report`` text for one trace."""
    sections = []
    meta = {k: v for k, v in trace.meta.items() if k != "version"}
    if meta:
        sections.append(
            "== Run ==\n"
            + "\n".join(f"  {key}: {value}" for key, value in meta.items())
        )
    tasks = trace.task_spans()
    sections.append(
        f"== Tasks ==\n  spans cover {len(tasks)} tasks, "
        f"{len(trace.spans)} spans, {len(trace.events)} events"
    )

    stage_rows = stage_profile(trace)
    if stage_rows:
        sections.append(
            "== Stage profile ==\n"
            + _table(
                list(stage_rows[0]),
                [list(row.values()) for row in stage_rows],
            )
        )

    hardness_rows = hardness_profile(trace)
    if hardness_rows:
        sections.append(
            "== Hardness profile ==\n"
            + _table(
                list(hardness_rows[0]),
                [list(row.values()) for row in hardness_rows],
            )
        )

    matrix = stage_hardness_matrix(trace)
    if matrix:
        stages = sorted({stage for row in matrix.values() for stage in row})
        header = ["hardness \\ stage s", *stages]
        rows = [
            [level, *(round(matrix[level].get(stage, 0.0), 4) for stage in stages)]
            for level in sorted(matrix)
        ]
        sections.append("== Stage x hardness (s) ==\n" + _table(header, rows))

    if trace.metrics:
        telemetry = telemetry_from_trace(trace)
        sections.append(
            "== Telemetry ==\n"
            + "\n".join(
                f"  {key}: {value}"
                for key, value in telemetry.as_dict().items()
            )
        )

    sections.append("== Flame summary ==\n" + flame_summary(trace))
    return "\n\n".join(sections)
