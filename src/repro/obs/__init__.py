"""Observability: spans, metrics, structured events, trace export.

The evaluation stack is a multi-stage pipeline (prune → skeleton →
select → llm → adapt → execute) behind a resilience layer (retries,
circuit breaker, degradation ladder) and a caching/coalescing layer.
Aggregate numbers cannot say *which* stage spent the time or *which*
fallback rescued a query; this package can:

* **spans** (:mod:`repro.obs.trace`) — one root span per evaluated
  task with child spans for every pipeline stage, degradation rung,
  provider attempt, cache lookup, and SQL statement, carried on the
  same contextvar lanes the parallel engine already uses;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  histograms fed by the resilience, cache, coalescing, and executor
  layers;
* **structured events** (:mod:`repro.obs.log`) — levelled, typed log
  records that ride along in the trace;
* **export** (:mod:`repro.obs.export`) — a JSONL trace file (one span
  or event per line) plus a Chrome ``trace_event`` converter;
* **reporting** (:mod:`repro.obs.report`) — the ``repro report``
  renderer: per-stage / per-hardness profiles and a text flame summary;
* **continuous telemetry** (:mod:`repro.obs.windows`,
  :mod:`repro.obs.live`, :mod:`repro.obs.prom`, :mod:`repro.obs.top`) —
  the serving stack's always-on layer: sliding-window rates and
  p50/p95/p99, a per-tenant cost ledger, SLO burn-rate tracking, a
  bounded tail-sampled trace store, Prometheus text exposition, and the
  ``repro top`` dashboard.

Everything hangs off one :class:`~repro.obs.runtime.Observer`; when none
is active every instrumentation point is a single contextvar read (the
same discipline as :func:`repro.eval.timing.stage`), and enabling
telemetry never changes evaluation outcomes — only observes them.
"""

from repro.obs.export import chrome_trace, read_trace, write_trace
from repro.obs.live import (
    CostLedger,
    LiveConfig,
    LiveTelemetry,
    SLOObjectives,
    SLOTracker,
    TraceStore,
)
from repro.obs.log import LOG_LEVELS, LogEvent, StructuredLogger
from repro.obs.metrics import (
    LATENCY_BUCKET_BOUNDS_MS,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
    parse_metric_key,
)
from repro.obs.prom import parse_prometheus_text, prometheus_text
from repro.obs.report import render_report
from repro.obs.runtime import (
    Observer,
    annotate,
    count,
    current_observer,
    event,
    gauge,
    observe,
    span,
)
from repro.obs.telemetry import RunTelemetry
from repro.obs.trace import Span, Tracer
from repro.obs.windows import WindowedCounter, WindowedHistogram, WindowedMetrics

__all__ = [
    "CostLedger",
    "LATENCY_BUCKET_BOUNDS_MS",
    "LiveConfig",
    "LiveTelemetry",
    "SLOObjectives",
    "SLOTracker",
    "TraceStore",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedMetrics",
    "parse_prometheus_text",
    "prometheus_text",
    "Observer",
    "current_observer",
    "span",
    "annotate",
    "count",
    "gauge",
    "observe",
    "event",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metric_key",
    "parse_metric_key",
    "LogEvent",
    "StructuredLogger",
    "LOG_LEVELS",
    "RunTelemetry",
    "write_trace",
    "read_trace",
    "chrome_trace",
    "render_report",
]
