"""Prometheus text exposition for the metrics registry.

``GET /v1/metrics`` speaks JSON by default; a scraper sending
``Accept: text/plain`` gets the same truth in the Prometheus text
format (v0.0.4) rendered here.  The repo's dot-namespaced metric names
(``serve.latency_ms``) become underscore names (``serve_latency_ms``);
label values are escaped per the exposition rules (backslash, double
quote, newline).  Histograms with fixed bounds render as real
Prometheus histograms — cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count`` — so quantiles can also be recomputed server-side.

:func:`parse_prometheus_text` inverts the rendering (for the round-trip
tests and ``repro top``); it understands exactly the subset this module
emits.
"""

from __future__ import annotations

import re
from typing import Optional

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A repo metric name as a legal Prometheus metric name."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_labels(labels: dict) -> str:
    """``{k="v",...}`` with sorted keys, empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Writer:
    """Accumulates exposition lines, emitting each TYPE header once."""

    def __init__(self):
        self.lines = []
        self._typed = set()

    def sample(self, family: str, family_type: str, name: str,
               labels: dict, value) -> None:
        if family not in self._typed:
            self._typed.add(family)
            self.lines.append(f"# TYPE {family} {family_type}")
        self.lines.append(
            f"{name}{format_labels(labels)} {_format_value(value)}"
        )


def _emit_histogram(writer: _Writer, family: str, hist: dict,
                    extra_labels: Optional[dict] = None) -> None:
    labels = dict(extra_labels or {})
    bounds = hist.get("bounds") or []
    buckets = hist.get("buckets") or []
    if bounds and buckets:
        cumulative = 0
        for bound, bucket_count in zip(bounds, buckets):
            cumulative += bucket_count
            writer.sample(family, "histogram", family + "_bucket",
                          dict(labels, le=repr(float(bound))), cumulative)
        writer.sample(family, "histogram", family + "_bucket",
                      dict(labels, le="+Inf"), hist["count"])
    writer.sample(family, "histogram", family + "_sum", labels,
                  hist["total"])
    writer.sample(family, "histogram", family + "_count", labels,
                  hist["count"])


def prometheus_text(snapshot, live: Optional[dict] = None) -> str:
    """Render a :class:`MetricsSnapshot` (and optional live payload).

    ``snapshot`` is the cumulative registry snapshot; ``live`` is a
    :meth:`~repro.obs.live.LiveTelemetry.payload` dict, whose windowed
    counters render as ``<name>_window_total`` / ``_window_rate``
    gauges and windowed histograms as ``<name>_window`` histograms, all
    labelled with ``window_s``.
    """
    from repro.obs.metrics import parse_metric_key

    writer = _Writer()
    data = snapshot.as_dict()
    for key, value in data["counters"].items():
        name, labels = parse_metric_key(key)
        family = sanitize_metric_name(name) + "_total"
        writer.sample(family, "counter", family, labels, value)
    for key, value in data["gauges"].items():
        name, labels = parse_metric_key(key)
        family = sanitize_metric_name(name)
        writer.sample(family, "gauge", family, labels, value)
    for key, hist in data["histograms"].items():
        name, labels = parse_metric_key(key)
        _emit_histogram(writer, sanitize_metric_name(name), hist, labels)
    if live:
        windows = live.get("windows", {})
        window_labels = {"window_s": repr(float(windows.get("window_s", 0)))}
        for key, stats in windows.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            family = sanitize_metric_name(name) + "_window"
            writer.sample(family + "_total", "gauge", family + "_total",
                          dict(labels, **window_labels), stats["total"])
            writer.sample(family + "_rate", "gauge", family + "_rate",
                          dict(labels, **window_labels), stats["rate"])
        for key, hist in windows.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            family = sanitize_metric_name(name) + "_window"
            _emit_histogram(writer, family, hist,
                            dict(labels, **window_labels))
    return "\n".join(writer.lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)


def _parse_labels(raw: str) -> dict:
    """Parse the inside of a ``{...}`` label block, honouring escapes."""
    labels = {}
    i = 0
    n = len(raw)
    while i < n:
        eq = raw.index("=", i)
        key = raw[i:eq].strip()
        if raw[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {raw[eq:]!r}")
        j = eq + 2
        chunk = []
        while raw[j] != '"':
            if raw[j] == "\\":
                chunk.append(raw[j:j + 2])
                j += 2
            else:
                chunk.append(raw[j])
                j += 1
        labels[key] = unescape_label_value("".join(chunk))
        i = j + 1
        if i < n and raw[i] == ",":
            i += 1
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse an exposition into ``{"types": ..., "samples": ...}``.

    ``types`` maps family name to declared type; ``samples`` is a list
    of ``(name, labels_dict, value_float)`` in document order.  Only
    the subset :func:`prometheus_text` emits is supported.
    """
    types = {}
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, family_type = rest.partition(" ")
            types[family] = family_type
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels_raw = match.group("labels")
        samples.append((
            match.group("name"),
            _parse_labels(labels_raw) if labels_raw else {},
            float(match.group("value")),
        ))
    return {"types": types, "samples": samples}
