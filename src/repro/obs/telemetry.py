"""The typed telemetry roll-up attached to evaluation reports.

:class:`RunTelemetry` condenses a run's metrics registry into the
handful of numbers an operator actually tunes on: how often the prompt
cache saved a provider call, how many retries and breaker openings the
fault load caused, which degradation rungs answered, and what the SQL
executor absorbed.  It lives on
:attr:`repro.eval.harness.EvaluationReport.telemetry` when a run is
observed — and is deliberately *not* part of ``outcomes``, which stay
byte-identical with telemetry on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsSnapshot


@dataclass(frozen=True)
class RunTelemetry:
    """What the wrapper stack did during one evaluation run."""

    tasks: int = 0
    llm_attempts: int = 0
    llm_retries: int = 0
    breaker_opens: int = 0
    fallbacks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesce_requests: int = 0
    coalesce_merged: int = 0
    #: Final degradation rung per translation: ``{"0": 37, "1": 3, ...}``.
    degradation_levels: dict = field(default_factory=dict)
    degrade_exhausted: int = 0
    executor_statements: int = 0
    executor_timeouts: int = 0
    executor_cache_hits: int = 0
    executor_cache_misses: int = 0
    #: Demonstration-index lifecycle (repro.store): cold builds, warm
    #: loads, shared/cached reuses, and staleness-triggered rebuilds.
    index_builds: int = 0
    index_loads: int = 0
    index_cache_hits: int = 0
    index_rebuilds: int = 0
    #: Static pre-execution guard: predictions checked and skipped.
    guard_checked: int = 0
    guard_skipped: int = 0
    #: Execution-feedback repair (docs/repair.md): tasks that entered the
    #: loop, total rounds run, recoveries keyed by the round that healed
    #: them (``{"1": 5, "2": 1}``), and abandonments keyed by reason.
    repair_triggered: int = 0
    repair_rounds: int = 0
    repair_success_depth: dict = field(default_factory=dict)
    repair_abandoned: dict = field(default_factory=dict)
    #: Per-rule static-analysis counts: ``{"sql.unknown-column": 4, ...}``.
    diagnostics: dict = field(default_factory=dict)
    #: Dialect portability axis (docs/dialects.md): statements analyzed
    #: against a non-SQLite target, ``dlct.*`` findings raised, and
    #: executions the profile executor refused statically.
    dialect_checked: int = 0
    dialect_findings: int = 0
    dialect_rejections: int = 0
    events: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Prompt-cache hits over lookups (0.0 before the first lookup)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def repair_recovered(self) -> int:
        """Tasks the repair loop healed (any depth)."""
        return sum(self.repair_success_depth.values())

    @property
    def degraded(self) -> int:
        """Translations answered below the full-prompt rung."""
        return sum(
            n for level, n in self.degradation_levels.items() if level != "0"
        )

    @classmethod
    def from_metrics(
        cls, snapshot: MetricsSnapshot, events: int = 0
    ) -> "RunTelemetry":
        """Build the roll-up from a registry snapshot."""
        return cls(
            tasks=snapshot.counter("tasks.evaluated"),
            llm_attempts=snapshot.counter("llm.attempts"),
            llm_retries=snapshot.counter("llm.retries"),
            breaker_opens=snapshot.counter("llm.breaker.opens"),
            fallbacks=snapshot.counter("llm.fallbacks"),
            cache_hits=snapshot.counter("cache.hits"),
            cache_misses=snapshot.counter("cache.misses"),
            coalesce_requests=snapshot.counter("coalesce.requests"),
            coalesce_merged=snapshot.counter("coalesce.merged"),
            degradation_levels=dict(
                sorted(snapshot.labelled("degrade.level").items())
            ),
            degrade_exhausted=snapshot.counter("degrade.exhausted"),
            executor_statements=snapshot.counter("executor.statements"),
            executor_timeouts=snapshot.counter("executor.timeouts"),
            executor_cache_hits=snapshot.counter("executor.cache_hits"),
            executor_cache_misses=snapshot.counter("executor.cache_misses"),
            index_builds=snapshot.counter("index.builds"),
            index_loads=snapshot.counter("index.loads"),
            index_cache_hits=snapshot.counter("index.cache_hit"),
            index_rebuilds=snapshot.counter("index.rebuilds"),
            guard_checked=snapshot.counter("guard.checked"),
            guard_skipped=snapshot.counter("guard.skipped"),
            repair_triggered=snapshot.counter("repair.triggered"),
            repair_rounds=snapshot.counter("repair.rounds"),
            repair_success_depth=dict(
                sorted(snapshot.labelled("repair.success_depth").items())
            ),
            repair_abandoned=dict(
                sorted(snapshot.labelled("repair.abandoned").items())
            ),
            diagnostics=dict(
                sorted(snapshot.labelled("analysis.rule").items())
            ),
            dialect_checked=snapshot.counter_total("analysis.dialect.checked"),
            dialect_findings=snapshot.counter_total(
                "analysis.dialect.finding"
            ),
            dialect_rejections=snapshot.counter_total(
                "executor.dialect_rejections"
            ),
            events=events,
        )

    def as_dict(self) -> dict:
        """JSON-ready form (what ``repro report`` and benches render)."""
        return {
            "tasks": self.tasks,
            "llm_attempts": self.llm_attempts,
            "llm_retries": self.llm_retries,
            "breaker_opens": self.breaker_opens,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "coalesce_requests": self.coalesce_requests,
            "coalesce_merged": self.coalesce_merged,
            "degradation_levels": self.degradation_levels,
            "degraded": self.degraded,
            "degrade_exhausted": self.degrade_exhausted,
            "executor_statements": self.executor_statements,
            "executor_timeouts": self.executor_timeouts,
            "executor_cache_hits": self.executor_cache_hits,
            "executor_cache_misses": self.executor_cache_misses,
            "index_builds": self.index_builds,
            "index_loads": self.index_loads,
            "index_cache_hits": self.index_cache_hits,
            "index_rebuilds": self.index_rebuilds,
            "guard_checked": self.guard_checked,
            "guard_skipped": self.guard_skipped,
            "repair_triggered": self.repair_triggered,
            "repair_rounds": self.repair_rounds,
            "repair_recovered": self.repair_recovered,
            "repair_success_depth": self.repair_success_depth,
            "repair_abandoned": self.repair_abandoned,
            "diagnostics": self.diagnostics,
            "dialect_checked": self.dialect_checked,
            "dialect_findings": self.dialect_findings,
            "dialect_rejections": self.dialect_rejections,
            "events": self.events,
        }
