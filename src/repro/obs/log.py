"""Structured event logging.

Events are typed records — a name, a level, a task lane, a timestamp,
and arbitrary JSON-ready fields — not formatted strings.  They are
collected alongside spans (and exported into the same JSONL trace) and
optionally forwarded live to a *sink* callable, which is how the CLI's
``--log-level`` streams events to stderr while a run is in flight.

Levels follow the familiar ladder (``debug`` < ``info`` < ``warning``
< ``error``); ``off`` disables collection entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Optional

LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


@dataclass
class LogEvent:
    """One structured log record."""

    seq: int
    level: str
    name: str
    lane: str
    t: float
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready form (one JSONL trace line)."""
        return {
            "type": "event",
            "seq": self.seq,
            "level": self.level,
            "name": self.name,
            "lane": self.lane,
            "t": round(self.t, 6),
            "fields": self.fields,
        }

    def format(self) -> str:
        """Human-readable one-liner for live sinks."""
        parts = [f"{key}={value}" for key, value in self.fields.items()]
        body = (" " + " ".join(parts)) if parts else ""
        return f"[{self.level:<7}] {self.name} lane={self.lane}{body}"


class StructuredLogger:
    """Collects :class:`LogEvent` records above a threshold level."""

    def __init__(
        self,
        level: str = "info",
        sink: Optional[Callable] = None,
    ):
        if level not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LOG_LEVELS)}"
            )
        self.level = level
        self.sink = sink
        self._events: list = []
        self._lock = Lock()

    def enabled(self, level: str) -> bool:
        """Whether records at ``level`` are collected."""
        return LOG_LEVELS.get(level, 0) >= LOG_LEVELS[self.level]

    def log(
        self, name: str, level: str, lane: str, t: float, fields: dict
    ) -> Optional[LogEvent]:
        """Record one event (dropped when below the threshold)."""
        if not self.enabled(level):
            return None
        with self._lock:
            event = LogEvent(
                seq=len(self._events),
                level=level,
                name=name,
                lane=lane,
                t=t,
                fields=fields,
            )
            self._events.append(event)
        if self.sink is not None:
            self.sink(event)
        return event

    def events(self) -> list:
        """Collected events in record order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
