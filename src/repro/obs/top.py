"""``repro top`` — a one-screen live dashboard over ``/v1/metrics``.

The renderer is a pure function from the two JSON payloads the server
already serves (``/v1/metrics`` and ``/v1/status``) to a fixed-width
text screen: trailing-window qps and p50/p95/p99 per endpoint, the
per-tenant cost ledger, SLO burn state, degradation-rung distribution,
admission posture, and trace-store occupancy.  The CLI loop around it
(:func:`repro.cli._cmd_top`) just fetches, clears, and reprints — so
tests exercise the whole dashboard without a terminal or a socket.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

from repro.obs.metrics import parse_metric_key


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET one JSON payload (stdlib only)."""
    request = urllib.request.Request(
        url, headers={"Accept": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_payloads(base_url: str, timeout: float = 5.0) -> tuple:
    """``(metrics, status)`` payloads from a running server."""
    base = base_url.rstrip("/")
    return (
        fetch_json(base + "/v1/metrics", timeout=timeout),
        fetch_json(base + "/v1/status", timeout=timeout),
    )


def _labelled(mapping: dict, name: str, label: str) -> dict:
    """``{label_value: entry}`` for keys of ``name`` carrying ``label``."""
    out = {}
    for key, entry in mapping.items():
        base, labels = parse_metric_key(key)
        if base == name and label in labels:
            out[labels[label]] = entry
    return out


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:8.1f}"


def _endpoint_rows(windows: dict) -> list:
    counters = _labelled(windows.get("counters", {}),
                         "serve.requests", "endpoint")
    histograms = _labelled(windows.get("histograms", {}),
                           "serve.latency_ms", "endpoint")
    errors = _labelled(windows.get("counters", {}),
                       "serve.errors", "endpoint")
    rows = []
    for endpoint in sorted(set(counters) | set(histograms)):
        hist = histograms.get(endpoint, {})
        counter = counters.get(endpoint, {})
        rows.append(
            f"  {endpoint:<10} {counter.get('rate', 0.0):7.2f} qps  "
            f"p50 {_fmt_ms(hist.get('p50'))}  "
            f"p95 {_fmt_ms(hist.get('p95'))}  "
            f"p99 {_fmt_ms(hist.get('p99'))}  "
            f"err {errors.get(endpoint, {}).get('total', 0.0):5.0f}"
        )
    return rows or ["  (no traffic in window)"]


def _tenant_rows(tenants: dict) -> list:
    rows = []
    for tenant, usage in sorted(tenants.items()):
        rows.append(
            f"  {tenant:<12} req {usage.get('requests', 0):6d}  "
            f"tok {usage.get('total_tokens', 0):8d}  "
            f"llm {usage.get('llm_calls', 0):6d}  "
            f"repair {usage.get('repair_rounds', 0):4d}  "
            f"cache {usage.get('cache_hits', 0):5d}  "
            f"shed {usage.get('shed', 0):4d}  "
            f"err {usage.get('errors', 0):4d}"
        )
    return rows or ["  (no tenant traffic yet)"]


def _slo_rows(slo: dict) -> list:
    rows = []
    for tenant, objectives in sorted(slo.items()):
        for objective, state in sorted(objectives.items()):
            flag = "!!" if state.get("state") == "burning" else "ok"
            rows.append(
                f"  {tenant:<12} {objective:<13} [{flag}]  "
                f"fast {state.get('fast_burn', 0.0):6.2f}x  "
                f"slow {state.get('slow_burn', 0.0):6.2f}x  "
                f"target {state.get('target', 0.0):.3f}"
            )
    return rows or ["  (no SLO traffic yet)"]


def _rung_row(counters: dict) -> str:
    rungs = _labelled(counters, "degrade.level", "level")
    if not rungs:
        return "  rungs: (none reached)"
    parts = [
        f"L{level}={rungs[level]}"
        for level in sorted(rungs, key=lambda v: int(v))
    ]
    return "  rungs: " + "  ".join(parts)


def render_dashboard(metrics: dict, status: dict) -> str:
    """The one-screen dashboard for the two server payloads."""
    live = metrics.get("live", {})
    windows = live.get("windows", {})
    admission = metrics.get("admission", {})
    traces = live.get("traces", {})
    overall = status.get("status", "ok")
    lines = [
        f"repro top — status {overall.upper()}  "
        f"(window {windows.get('window_s', 0):.0f}s)",
        "",
        "endpoints (trailing window)",
        *_endpoint_rows(windows),
        "",
        "tenants (cumulative ledger)",
        *_tenant_rows(live.get("tenants", {})),
        "",
        "slo burn (fast/slow windows)",
        *_slo_rows(status.get("slo", {})),
        "",
        "pipeline",
        _rung_row(metrics.get("metrics", {}).get("counters", {})),
        (
            f"  admission: inflight {admission.get('inflight', 0)}"
            f"/{admission.get('policy', {}).get('max_inflight', 0)}  "
            f"peak {admission.get('peak_inflight', 0)}"
        ),
        (
            f"  traces: {traces.get('stored', 0)}"
            f"/{traces.get('capacity', 0)} stored  "
            f"{traces.get('seen', 0)} seen  "
            f"{traces.get('dropped', 0)} sampled out  "
            f"{traces.get('evicted', 0)} evicted"
        ),
    ]
    if status.get("burning"):
        lines.insert(1, "  BURNING: " + ", ".join(status["burning"]))
    return "\n".join(lines) + "\n"


def run_top(base_url: str, interval: float = 2.0, once: bool = False,
            out=None, clear: bool = True) -> int:
    """The ``repro top`` loop: fetch, render, clear, repeat.

    Returns a process exit code (1 when the first fetch fails, so a
    typo'd URL fails loudly instead of looping on errors).
    """
    import sys
    import time

    out = out or sys.stdout
    first = True
    while True:
        try:
            metrics, status = fetch_payloads(base_url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if first:
                out.write(f"repro top: cannot reach {base_url}: {exc}\n")
                return 1
            out.write(f"(refresh failed: {exc})\n")
        else:
            screen = render_dashboard(metrics, status)
            if clear and not first:
                out.write("\x1b[2J\x1b[H")
            out.write(screen)
            if hasattr(out, "flush"):
                out.flush()
        if once:
            return 0
        first = False
        time.sleep(interval)
