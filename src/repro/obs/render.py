"""The CLI's rendering boundary — the one module allowed to ``print``.

Everything user-facing the command-line interface emits funnels through
:func:`out` (stdout) or the structured-event sink :func:`stderr_sink`
(stderr), so library code stays silent and testable; a lint-style test
(``tests/test_no_print.py``) forbids ``print`` calls anywhere else under
``src/repro``.
"""

from __future__ import annotations

import sys


def out(*parts, sep: str = " ") -> None:
    """Render a line of CLI output to stdout."""
    print(*parts, sep=sep)


def stderr_sink(event) -> None:
    """Live sink for structured log events: one formatted line to stderr."""
    print(event.format(), file=sys.stderr)
