"""Hierarchical spans over the engine's task lanes.

A *span* is one timed block of work — a whole task, one pipeline stage,
one provider attempt, one SQL statement — with a parent link that
reconstructs the call tree.  Spans are grouped by *lane*, the same
stable per-task identifier the parallel engine scopes via
:mod:`repro.utils.context`, so a 4-worker run produces exactly the
per-task trees a serial run would.

Determinism: span *ids* are derived from ``(tracer seed, lane, per-lane
sequence number)`` with :func:`~repro.utils.rng.stable_hash`, so two
runs over the same workload assign identical ids even though their
wall-clock timestamps differ.  Timestamps are monotonic-clock offsets
from the tracer's epoch (never wall time), which keeps durations immune
to clock steps.

The *current* span lives in a :class:`contextvars.ContextVar`: worker
threads nest their own spans without locking each other, and the only
shared mutation — appending a finished span, bumping a lane counter —
is guarded by one lock.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from threading import Lock
from typing import Optional

from repro.utils.context import current_task_lane
from repro.utils.rng import stable_hash

#: Lane assigned to spans opened outside any task (training, one-offs).
GLOBAL_LANE = "_global"

_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class Span:
    """One timed block of work inside a task lane."""

    span_id: str
    parent_id: Optional[str]
    name: str
    lane: str
    seq: int
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-ready form (one JSONL trace line)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "lane": self.lane,
            "seq": self.seq,
            "start": round(self.start, 6),
            "end": None if self.end is None else round(self.end, 6),
            "attrs": self.attrs,
        }


class Tracer:
    """Creates, nests, and collects spans for one observed run."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.epoch = time.perf_counter()
        self._spans: list = []
        self._lane_seq: dict = {}
        self._lock = Lock()

    def now(self) -> float:
        """Monotonic seconds since the tracer's epoch."""
        return time.perf_counter() - self.epoch

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this context, if any."""
        return _CURRENT_SPAN.get()

    def start_span(
        self, name: str, lane: Optional[str] = None, **attrs
    ) -> Span:
        """Open a span as a child of the current one.

        ``lane`` defaults to the parent span's lane, then the engine's
        task lane, then :data:`GLOBAL_LANE`.
        """
        parent = _CURRENT_SPAN.get()
        if lane is None:
            if parent is not None:
                lane = parent.lane
            else:
                lane = current_task_lane() or GLOBAL_LANE
        with self._lock:
            seq = self._lane_seq.get(lane, 0)
            self._lane_seq[lane] = seq + 1
        span = Span(
            span_id=format(stable_hash(self.seed, lane, seq), "016x"),
            parent_id=None if parent is None else parent.span_id,
            name=name,
            lane=lane,
            seq=seq,
            start=self.now(),
            attrs=dict(attrs),
        )
        span._token = _CURRENT_SPAN.set(span)  # type: ignore[attr-defined]
        return span

    def end_span(self, span: Span, **attrs) -> Span:
        """Close a span, record it, and restore its parent as current."""
        span.end = self.now()
        if attrs:
            span.attrs.update(attrs)
        _CURRENT_SPAN.reset(span._token)  # type: ignore[attr-defined]
        with self._lock:
            self._spans.append(span)
        return span

    def spans(self) -> list:
        """Finished spans in deterministic ``(lane, seq)`` order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.lane, s.seq))

    def lane_spans(self, lane: str) -> list:
        """One lane's finished spans in ``seq`` order."""
        with self._lock:
            return sorted(
                (s for s in self._spans if s.lane == lane),
                key=lambda s: s.seq,
            )

    def prune_lane(self, lane: str) -> int:
        """Forget one lane's finished spans and its sequence counter.

        A long-lived server captures each request's tree into its trace
        store and then releases the tracer's copy; dropping the lane's
        seq counter too means a replayed request id re-derives the very
        same span ids (ids hash ``(seed, lane, seq)``).  Returns the
        number of spans removed.
        """
        with self._lock:
            before = len(self._spans)
            self._spans = [s for s in self._spans if s.lane != lane]
            self._lane_seq.pop(lane, None)
            return before - len(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
