"""Trace export: JSONL on disk, Chrome ``trace_event`` for a viewer.

The JSONL format is one self-describing object per line:

* a ``meta`` header (schema version plus whatever the run recorded —
  approach, dataset, workers);
* one ``span`` line per finished span, in deterministic ``(lane, seq)``
  order (ids are seeded, timestamps are monotonic-clock offsets);
* one ``event`` line per structured log record, in record order;
* a trailing ``metrics`` line with the registry snapshot.

``repro report`` consumes this file; :func:`chrome_trace` converts the
same data into the ``trace_event`` JSON that ``chrome://tracing`` and
Perfetto render, with one virtual thread per task lane.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_VERSION = 1


@dataclass
class TraceData:
    """A decoded trace: plain dicts, exactly what the JSONL lines held."""

    meta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def task_spans(self) -> list:
        """Root spans (one per evaluated task)."""
        return [s for s in self.spans if s["name"] == "task"]

    def named(self, prefix: str) -> list:
        """Spans whose name starts with ``prefix``."""
        return [s for s in self.spans if s["name"].startswith(prefix)]


def write_trace(observer, path, meta=None) -> int:
    """Serialize an observer's trace to ``path``; returns lines written.

    ``observer`` is a :class:`repro.obs.runtime.Observer` (anything with
    ``tracer``, ``logger``, and ``metrics`` duck-types).
    """
    lines = [
        json.dumps(
            {"type": "meta", "version": SCHEMA_VERSION, **(meta or {})}
        )
    ]
    for span in observer.tracer.spans():
        lines.append(json.dumps(span.as_dict()))
    for event in observer.logger.events():
        lines.append(json.dumps(event.as_dict()))
    lines.append(
        json.dumps({"type": "metrics", **observer.metrics.snapshot().as_dict()})
    )
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def read_trace(path) -> TraceData:
    """Parse a JSONL trace back into a :class:`TraceData`."""
    trace = TraceData()
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type", None)
        if kind == "meta":
            trace.meta = record
        elif kind == "span":
            trace.spans.append(record)
        elif kind == "event":
            trace.events.append(record)
        elif kind == "metrics":
            trace.metrics = record
    return trace


def chrome_trace(trace: TraceData) -> dict:
    """Convert to Chrome ``trace_event`` JSON (complete events).

    Lanes become numbered virtual threads with ``thread_name`` metadata,
    which is what makes per-task swimlanes appear in the viewer.
    """
    lanes = sorted({span["lane"] for span in trace.spans})
    tid = {lane: i for i, lane in enumerate(lanes)}
    events = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid[lane],
            "args": {"name": lane},
        }
        for lane in lanes
    ]
    for span in trace.spans:
        end = span["end"] if span["end"] is not None else span["start"]
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid[span["lane"]],
                "ts": round(span["start"] * 1e6, 3),
                "dur": round((end - span["start"]) * 1e6, 3),
                "args": span["attrs"],
            }
        )
    for event in trace.events:
        events.append(
            {
                "name": event["name"],
                "cat": "repro.event",
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tid.get(event["lane"], 0),
                "ts": round(event["t"] * 1e6, 3),
                "args": event["fields"],
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
