"""The PLM-based baseline: RESDSQL-style prune → skeleton → fill.

No LLM is involved: the trained schema classifier prunes, the trained
skeleton predictor picks the composition, and a deterministic semantic
parser (the same intent machinery, under a PLM competence profile) fills
the slots.  Because both models are fine-tuned on the corpus, the output
follows the annotation conventions — hence the family's high EM in
Table 4 — while generalization to synonym/DK variants is weaker than the
LLMs' (Figure 10's context).
"""

from __future__ import annotations

from typing import Optional

from repro.api.compat import absorb_positional
from repro.api.defaults import DEFAULT_SEED, DEFAULT_TOP_K
from repro.api.registry import register
from repro.core.pruning import SchemaPruner
from repro.core.skeleton_prediction import SkeletonPredictionModule
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.llm.mock_llm import PromptContext
from repro.llm.profiles import LLMProfile
from repro.llm.promptfmt import parse_prompt, build_prompt, render_schema
from repro.llm.understanding import Understander
from repro.plm.classifier import train_schema_classifier
from repro.plm.skeleton_model import train_skeleton_predictor
from repro.spider.archetypes import BUILD_ERRORS, archetype_by_kind
from repro.spider.dataset import Dataset
from repro.sqlkit.render import render_sql
from repro.sqlkit.skeleton import skeleton_tokens
from repro.utils.rng import derive_rng, stable_hash

# The fine-tuned encoder knows corpus conventions perfectly but has weaker
# open-world language coverage than the big LLMs.
PLM_PROFILE = LLMProfile(
    name="plm-t5",
    filter_miss=0.04,
    column_confusion=0.10,
    synonym_coverage=0.45,
    dk_coverage=0.35,
    value_link_skill=0.60,
    prior_gold_affinity=1.0,
    demo_follow=0.0,
    distinct_prior=0.4,
    hallucination_rate=0.0,
    sample_noise=0.0,
)


class PLMSeq2SQL:
    """A fine-tuned seq2seq pipeline without any LLM."""

    def __init__(self, *args, demo_pool: Optional[Dataset] = None,
                 seed: int = DEFAULT_SEED, top_k: int = DEFAULT_TOP_K):
        demo_pool, seed, top_k = absorb_positional(
            "PLMSeq2SQL",
            args,
            (("demo_pool", demo_pool), ("seed", seed), ("top_k", top_k)),
        )
        self.name = "PLM-seq2seq"
        self.seed = seed
        self.top_k = top_k
        self.pruner: Optional[SchemaPruner] = None
        self.skeleton_module: Optional[SkeletonPredictionModule] = None
        self._understander = Understander(PLM_PROFILE)
        if demo_pool is not None:
            self.fit(demo_pool)

    def fit(self, demo_pool: Dataset) -> "PLMSeq2SQL":
        """Prepare the approach from the demonstration pool."""
        classifier = train_schema_classifier(demo_pool, seed=self.seed)
        self.pruner = SchemaPruner(classifier=classifier)
        predictor = train_skeleton_predictor(demo_pool, seed=self.seed)
        self.skeleton_module = SkeletonPredictionModule(
            predictor=predictor, top_k=self.top_k
        )
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        assert self.pruner is not None, "call fit() first"
        pruned = self.pruner.prune(task.question, task.database)
        schema_text = render_schema(task.database, pruned)
        schema_info = parse_prompt(
            build_prompt(schema_text, task.question)
        ).task_schema
        rng = derive_rng(self.seed, "plm", task.db_id, stable_hash(task.question))
        understanding = self._understander.understand(
            task.question, schema_info, rng
        )
        intent = understanding.intent
        if intent is None:
            table = pruned.tables[0].name if pruned.tables else "unknown"
            return TranslationResult(sql=f"SELECT * FROM {table}")
        predicted = self.skeleton_module.predict(task.question, pruned)
        sql = self._fill(intent, predicted, schema_info)
        return TranslationResult(sql=sql, usage=TokenUsage())

    def _fill(self, intent, predicted, schema_info) -> str:
        """Choose the realization whose skeleton the predictor chose."""
        try:
            archetype = archetype_by_kind(intent.kind)
        except KeyError:
            return f"SELECT * FROM {intent.table}"
        ctx = PromptContext(schema_info)
        built = []
        for realization in archetype.candidate_realizations(intent):
            try:
                query = archetype.build(intent, realization, ctx)
            except BUILD_ERRORS:
                continue
            built.append((realization, query, tuple(skeleton_tokens(render_sql(query)))))
        if not built:
            return f"SELECT * FROM {intent.table}"
        predicted_tokens = [tuple(p.tokens) for p in predicted]
        for wanted in predicted_tokens:
            for realization, query, tokens in built:
                if tokens == wanted:
                    return render_sql(query)
        # Fall back to the corpus-majority realization.
        weights = dict(zip(archetype.realizations, archetype.gold_weights))
        best = max(built, key=lambda b: weights.get(b[0], 0.0))
        return render_sql(best[1])


@register("plm")
def _make_plm(*, llm=None, train=None, budget=None, consistency_n=None,
              seed=None, **config):
    """The PLM pipeline is LLM-free; ``llm``/budget/consistency are unused."""
    approach = PLMSeq2SQL(
        seed=DEFAULT_SEED if seed is None else seed, **config
    )
    return approach.fit(train) if train is not None else approach
