"""C3 [11]: calibrated zero-shot prompting.

Three C's: Clear Prompting (lexically pruned schema), Calibration with
Hints (hand-crafted instructions steering SQL style away from common
ChatGPT biases), and Consistent Output (execution-consistency voting).
No demonstrations, no fine-tuned models.
"""

from __future__ import annotations

from typing import Optional

from repro.api.compat import absorb_positional
from repro.api.defaults import DEFAULT_CONSISTENCY_N, DEFAULT_VALUES_PER_COLUMN
from repro.api.registry import register
from repro.core.consistency import consistency_vote
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.llm.degrade import best_effort_sql, retries_so_far, run_ladder
from repro.llm.interface import LLM, LLMRequest
from repro.llm.promptfmt import build_prompt, render_schema
from repro.schema import Database, Schema, SchemaGraph, SQLiteExecutor
from repro.spider.dataset import Dataset
from repro.utils.text import singularize, split_words

C3_INSTRUCTIONS = (
    "Write a valid SQLite query for the question. "
    "Use only the tables and columns provided in the schema. "
    "Avoid unnecessary DISTINCT keywords and extra columns in SELECT."
)


class C3:
    """Calibrated zero-shot NL2SQL."""

    def __init__(
        self,
        llm: LLM,
        *args,
        consistency_n: int = DEFAULT_CONSISTENCY_N,
        values_per_column: int = DEFAULT_VALUES_PER_COLUMN,
    ):
        consistency_n, values_per_column = absorb_positional(
            "C3",
            args,
            (
                ("consistency_n", consistency_n),
                ("values_per_column", values_per_column),
            ),
        )
        self.llm = llm
        self.consistency_n = consistency_n
        self.values_per_column = values_per_column
        self.name = f"C3({llm.name})"
        self.executor = SQLiteExecutor()

    def fit(self, demo_pool: Optional[Dataset] = None) -> "C3":
        """No-op — C3 is zero-shot by design."""
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        pruned = lexical_prune(task.question, task.database)
        schema_text = render_schema(
            task.database, pruned, values_per_column=self.values_per_column
        )
        prompt = build_prompt(
            schema_text, task.question, instructions=C3_INSTRUCTIONS
        )
        retries_before = retries_so_far(self.llm)
        outcome = run_ladder(
            self.llm,
            [
                lambda: LLMRequest(prompt=prompt, n=self.consistency_n),
                # Truncated/failing: retry a hint-free prompt at one sample.
                lambda: LLMRequest(
                    prompt=build_prompt(schema_text, task.question), n=1
                ),
            ],
        )
        retries = retries_so_far(self.llm) - retries_before
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(task.database.schema),
                degradation_level=outcome.level,
                retries=retries,
                best_effort=True,
                events=outcome.events,
            )
        response = outcome.response
        final = consistency_vote(response.texts, self.executor, task.database)
        return TranslationResult(
            sql=final,
            usage=TokenUsage(response.prompt_tokens, response.output_tokens, 1),
            degradation_level=outcome.level,
            retries=retries,
            events=outcome.events,
        )

    def close(self) -> None:
        """Release the underlying SQLite resources."""
        self.executor.close()


def lexical_prune(question: str, database: Database) -> Schema:
    """Zero-shot schema pruning by lexical overlap.

    Tables whose name words appear in the question are kept, along with
    their foreign-key neighbours (for join paths).  Without a trained
    classifier this is noisier than PURPLE's pruning — C3's design point.
    """
    schema = database.schema
    q_words = {singularize(w) for w in split_words(question)}
    graph = SchemaGraph(schema)
    scored = []
    for table in schema.tables:
        t_words = [singularize(w) for w in split_words(table.natural_name)]
        overlap = sum(1 for w in t_words if w in q_words)
        scored.append((overlap / max(len(t_words), 1), table.key))
    kept = {t for score, t in scored if score >= 0.5}
    if not kept:
        kept = {max(scored)[1]}
    for table in list(kept):
        kept.update(graph.neighbors(table))
    keep = {t: [c.key for c in schema.table(t).columns] for t in kept}
    pruned = schema.subset(keep)
    return pruned if pruned.tables else schema


@register("c3")
def _make_c3(*, llm=None, train=None, budget=None, consistency_n=None,
             seed=None, **config):
    """C3 ignores budget/seed; ``train`` is accepted but unused."""
    approach = C3(
        llm,
        consistency_n=(
            DEFAULT_CONSISTENCY_N if consistency_n is None else consistency_n
        ),
        **config,
    )
    return approach.fit(train) if train is not None else approach
