"""Zero-shot and random-few-shot baselines.

``ZeroShotSQL`` is ChatGPT-SQL [5] when paired with the ChatGPT profile
and the "Zero-shot (GPT4)" row of Table 4 with the GPT4 profile.
``FewShotRandom`` packs randomly chosen demonstrations to the budget —
the "Few-shot (GPT4)" row.
"""

from __future__ import annotations

from typing import Optional

from repro.api.compat import absorb_positional
from repro.api.defaults import (
    DEFAULT_BUDGET,
    DEFAULT_SEED,
    DEFAULT_VALUES_PER_COLUMN,
)
from repro.api.registry import register
from repro.core.prompt import PromptBuilder
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.llm.degrade import best_effort_sql, retries_so_far, run_ladder
from repro.llm.interface import LLM, LLMRequest
from repro.llm.promptfmt import build_prompt, render_schema
from repro.spider.dataset import Dataset
from repro.utils.rng import derive_rng, stable_hash


class ZeroShotSQL:
    """Plain zero-shot prompting: schema + question, one completion."""

    def __init__(
        self,
        llm: LLM,
        *args,
        values_per_column: int = DEFAULT_VALUES_PER_COLUMN,
    ):
        (values_per_column,) = absorb_positional(
            "ZeroShotSQL", args, (("values_per_column", values_per_column),)
        )
        self.llm = llm
        self.values_per_column = values_per_column
        self.name = f"ZeroShot({llm.name})"

    def fit(self, demo_pool: Optional[Dataset] = None) -> "ZeroShotSQL":
        """No-op — zero-shot prompting has nothing to train."""
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        schema_text = render_schema(
            task.database, values_per_column=self.values_per_column
        )
        prompt = build_prompt(schema_text, task.question)
        retries_before = retries_so_far(self.llm)
        outcome = run_ladder(
            self.llm, [lambda: LLMRequest(prompt=prompt, n=1)]
        )
        retries = retries_so_far(self.llm) - retries_before
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(task.database.schema),
                degradation_level=outcome.level,
                retries=retries,
                best_effort=True,
                events=outcome.events,
            )
        response = outcome.response
        return TranslationResult(
            sql=response.text,
            usage=TokenUsage(response.prompt_tokens, response.output_tokens, 1),
            retries=retries,
            events=outcome.events,
        )


class FewShotRandom:
    """Random demonstrations to the token budget, one completion."""

    def __init__(
        self,
        llm: LLM,
        *args,
        demo_pool: Optional[Dataset] = None,
        budget: int = DEFAULT_BUDGET,
        seed: int = DEFAULT_SEED,
    ):
        demo_pool, budget, seed = absorb_positional(
            "FewShotRandom",
            args,
            (("demo_pool", demo_pool), ("budget", budget), ("seed", seed)),
        )
        self.llm = llm
        self.budget = budget
        self.seed = seed
        self.name = f"FewShot({llm.name})"
        self.prompt_builder: Optional[PromptBuilder] = None
        if demo_pool is not None:
            self.fit(demo_pool)

    def fit(self, demo_pool: Dataset) -> "FewShotRandom":
        """Prepare the approach from the demonstration pool."""
        self.prompt_builder = PromptBuilder(demo_pool)
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        assert self.prompt_builder is not None, "call fit() first"
        schema_text = render_schema(task.database)
        rng = derive_rng(self.seed, "fewshot", stable_hash(task.question))
        prompt = self.prompt_builder.build(
            task.question, schema_text, demo_order=[], budget=self.budget, rng=rng
        )
        retries_before = retries_so_far(self.llm)
        outcome = run_ladder(
            self.llm,
            [
                lambda: LLMRequest(prompt=prompt, n=1),
                # Truncation/persistent failure: shed the demonstrations.
                lambda: LLMRequest(
                    prompt=build_prompt(schema_text, task.question), n=1
                ),
            ],
        )
        retries = retries_so_far(self.llm) - retries_before
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(task.database.schema),
                degradation_level=outcome.level,
                retries=retries,
                best_effort=True,
                events=outcome.events,
            )
        response = outcome.response
        return TranslationResult(
            sql=response.text,
            usage=TokenUsage(response.prompt_tokens, response.output_tokens, 1),
            degradation_level=outcome.level,
            retries=retries,
            events=outcome.events,
        )


@register("zero")
def _make_zero(*, llm=None, train=None, budget=None, consistency_n=None,
               seed=None, **config):
    """ZeroShotSQL ignores the shared budget/consistency/seed knobs."""
    approach = ZeroShotSQL(llm, **config)
    return approach.fit(train) if train is not None else approach


@register("few")
def _make_few(*, llm=None, train=None, budget=None, consistency_n=None,
              seed=None, **config):
    approach = FewShotRandom(
        llm,
        budget=DEFAULT_BUDGET if budget is None else budget,
        seed=DEFAULT_SEED if seed is None else seed,
        **config,
    )
    return approach.fit(train) if train is not None else approach
