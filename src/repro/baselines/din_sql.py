"""DIN-SQL [2]: decomposed in-context learning with chain-of-thought.

A *static* pool of curated demonstrations (one per query-pattern family,
drawn once from the training corpus) is prepended to every prompt with a
chain-of-thought instruction; a second self-correction call re-examines
the first answer.  The demonstrations teach decomposition and intent
handling, but — the paper's point — being static, they rarely contain the
operator composition the task at hand requires.
"""

from __future__ import annotations

from typing import Optional

from repro.api.compat import absorb_positional
from repro.api.registry import register
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.llm.degrade import best_effort_sql, retries_so_far, run_ladder
from repro.llm.errors import LLMError
from repro.llm.interface import LLM, LLMRequest
from repro.llm.promptfmt import build_prompt, render_demo, render_schema
from repro.plm.labels import used_schema_items
from repro.spider.dataset import Dataset

COT_INSTRUCTIONS = (
    "Let's think step by step: first find the relevant tables and columns, "
    "then decompose the question into sub-problems, then write the SQLite "
    "query. Use only the provided schema."
)

# One static demonstration per pattern family, mirroring DIN-SQL's
# easy/non-nested/nested prompt sections.
_PATTERN_FAMILIES = (
    "list",
    "count",
    "aggregate",
    "join_list",
    "group_count",
    "group_having",
    "superlative",
    "exclusion",
    "intersect",
    "compare_avg",
)


class DINSQL:
    """Few-shot CoT with a fixed demonstration set and self-correction."""

    def __init__(self, llm: LLM, *args, demo_pool: Optional[Dataset] = None):
        (demo_pool,) = absorb_positional(
            "DINSQL", args, (("demo_pool", demo_pool),)
        )
        self.llm = llm
        self.name = f"DIN-SQL({llm.name})"
        self._static_demos: list = []
        if demo_pool is not None:
            self.fit(demo_pool)

    def fit(self, demo_pool: Dataset) -> "DINSQL":
        """Curate the static demonstration set (first example per family)."""
        chosen = {}
        for ex in demo_pool.examples:
            kind = ex.intent.kind
            if kind in _PATTERN_FAMILIES and kind not in chosen:
                chosen[kind] = ex
        self._static_demos = []
        for kind in _PATTERN_FAMILIES:
            ex = chosen.get(kind)
            if ex is None:
                continue
            database = demo_pool.database(ex.db_id)
            used_tables, used_columns = used_schema_items(ex.sql, database.schema)
            keep = {
                t: [c for tt, c in used_columns if tt == t] for t in used_tables
            }
            pruned = database.schema.subset(keep) if keep else database.schema
            schema_text = render_schema(database, pruned)
            self._static_demos.append(render_demo(schema_text, ex.question, ex.sql))
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        schema_text = render_schema(task.database)
        prompt = build_prompt(
            schema_text,
            task.question,
            demos=self._static_demos,
            instructions=COT_INSTRUCTIONS,
        )
        retries_before = retries_so_far(self.llm)
        outcome = run_ladder(
            self.llm,
            [
                lambda: LLMRequest(prompt=prompt, n=1),
                # Truncation/persistent failure: drop the static
                # demonstrations and the CoT instruction.
                lambda: LLMRequest(
                    prompt=build_prompt(schema_text, task.question), n=1
                ),
            ],
        )
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(task.database.schema),
                degradation_level=outcome.level,
                retries=retries_so_far(self.llm) - retries_before,
                best_effort=True,
                events=outcome.events,
            )
        first = outcome.response
        events = list(outcome.events)
        # Self-correction round: the model re-examines its own answer.
        correction_prompt = (
            prompt
            + f"\nPrevious answer: {first.text}\n"
            "Check the answer for schema and logic errors and answer again."
        )
        try:
            second = self.llm.complete(LLMRequest(prompt=correction_prompt, n=1))
        except LLMError as exc:
            # The first answer stands when the correction round fails.
            events.append(f"{type(exc).__name__}@correction")
            second = first
        if second is first:
            usage = TokenUsage(first.prompt_tokens, first.output_tokens, 1)
        else:
            usage = TokenUsage(
                prompt_tokens=first.prompt_tokens + second.prompt_tokens,
                output_tokens=first.output_tokens + second.output_tokens,
                calls=2,
            )
        return TranslationResult(
            sql=second.text,
            usage=usage,
            degradation_level=outcome.level,
            retries=retries_so_far(self.llm) - retries_before,
            events=tuple(events),
        )


@register("din")
def _make_din(*, llm=None, train=None, budget=None, consistency_n=None,
              seed=None, **config):
    """DIN-SQL's static demo curation ignores the shared tuning knobs."""
    approach = DINSQL(llm, **config)
    return approach.fit(train) if train is not None else approach
