"""DAIL-SQL [8]: demonstration selection by masked-question and SQL
similarity.

The selector scores demonstrations by (a) Jaccard similarity between the
*masked* questions (schema terms and values removed) and (b) Jaccard
similarity between the **keyword sets** of the demonstration's SQL and a
preliminary SQL predicted for the task.  §IV-C1's critique applies: the
keyword-set Jaccard ignores operator *order*, so `A EXCEPT B` and
`B EXCEPT A` look identical — which is exactly where PURPLE's automaton
wins.
"""

from __future__ import annotations

from typing import Optional

from repro.api.compat import absorb_positional
from repro.api.defaults import DEFAULT_BUDGET, DEFAULT_DAIL_CONSISTENCY_N
from repro.api.registry import register
from repro.core.prompt import PromptBuilder
from repro.eval.cost import TokenUsage
from repro.eval.harness import TranslationResult, TranslationTask
from repro.llm.degrade import best_effort_sql, retries_so_far, run_ladder
from repro.llm.errors import LLMError
from repro.llm.interface import LLM, LLMRequest
from repro.llm.promptfmt import build_prompt, render_schema
from repro.spider.dataset import Dataset
from repro.sqlkit.errors import SQLError
from repro.sqlkit.skeleton import skeleton_tokens
from repro.utils.text import split_words


def masked_question_words(question: str) -> frozenset:
    """Question words minus numbers and quoted values (DAIL's masking)."""
    text = question
    # Strip quoted values.
    import re

    text = re.sub(r"'[^']*'", " ", text)
    words = {w for w in split_words(text) if not w.isdigit()}
    return frozenset(words)


def sql_keyword_set(sql: str) -> frozenset:
    """Order-insensitive skeleton keyword set of a SQL string."""
    try:
        tokens = skeleton_tokens(sql)
    except SQLError:
        return frozenset()
    return frozenset(t for t in tokens if t not in ("_", ",", "(", ")"))


def jaccard(a: frozenset, b: frozenset) -> float:
    """Set Jaccard similarity (0 when both sets are empty)."""
    if not a and not b:
        return 0.0
    return len(a & b) / max(len(a | b), 1)


class DAILSQL:
    """Similarity-based demonstration selection."""

    def __init__(
        self,
        llm: LLM,
        *args,
        demo_pool: Optional[Dataset] = None,
        budget: int = DEFAULT_BUDGET,
        consistency_n: int = DEFAULT_DAIL_CONSISTENCY_N,
    ):
        demo_pool, budget, consistency_n = absorb_positional(
            "DAILSQL",
            args,
            (
                ("demo_pool", demo_pool),
                ("budget", budget),
                ("consistency_n", consistency_n),
            ),
        )
        self.llm = llm
        self.budget = budget
        self.consistency_n = consistency_n
        self.name = f"DAIL-SQL({llm.name})"
        self.prompt_builder: Optional[PromptBuilder] = None
        self._demo_questions: list = []
        self._demo_keywords: list = []
        if demo_pool is not None:
            self.fit(demo_pool)

    def fit(self, demo_pool: Dataset) -> "DAILSQL":
        """Prepare the approach from the demonstration pool."""
        self.prompt_builder = PromptBuilder(demo_pool)
        self._demo_questions = [
            masked_question_words(ex.question) for ex in demo_pool.examples
        ]
        self._demo_keywords = [
            sql_keyword_set(ex.sql) for ex in demo_pool.examples
        ]
        return self

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        assert self.prompt_builder is not None, "call fit() first"
        schema_text = render_schema(task.database)

        retries_before = retries_so_far(self.llm)
        events: list = []

        # Preliminary SQL from a zero-shot call (DAIL's pre-prediction).
        # On failure, selection falls back to question similarity alone.
        pre_prompt = build_prompt(schema_text, task.question)
        pre_usage = TokenUsage()
        pre_keywords = frozenset()
        try:
            preliminary = self.llm.complete(LLMRequest(prompt=pre_prompt, n=1))
        except LLMError as exc:
            events.append(f"{type(exc).__name__}@preliminary")
        else:
            pre_keywords = sql_keyword_set(preliminary.text)
            pre_usage = TokenUsage(
                preliminary.prompt_tokens, preliminary.output_tokens, 1
            )

        question_words = masked_question_words(task.question)
        scores = [
            jaccard(question_words, q) + jaccard(pre_keywords, k)
            for q, k in zip(self._demo_questions, self._demo_keywords)
        ]
        order = sorted(range(len(scores)), key=lambda i: -scores[i])

        prompt = self.prompt_builder.build(
            task.question, schema_text, demo_order=order, budget=self.budget
        )
        outcome = run_ladder(
            self.llm,
            [
                lambda: LLMRequest(prompt=prompt, n=self.consistency_n),
                # Truncation/persistent failure: shed the demonstrations.
                lambda: LLMRequest(prompt=pre_prompt, n=1),
            ],
        )
        events.extend(outcome.events)
        retries = retries_so_far(self.llm) - retries_before
        if not outcome.ok:
            return TranslationResult(
                sql=best_effort_sql(task.database.schema),
                usage=pre_usage,
                degradation_level=outcome.level,
                retries=retries,
                best_effort=True,
                events=tuple(events),
            )
        response = outcome.response
        from repro.core.consistency import consistency_vote
        from repro.schema import SQLiteExecutor

        with SQLiteExecutor() as executor:
            final = consistency_vote(response.texts, executor, task.database)
        usage = TokenUsage(
            prompt_tokens=pre_usage.prompt_tokens + response.prompt_tokens,
            output_tokens=pre_usage.output_tokens + response.output_tokens,
            calls=pre_usage.calls + 1,
        )
        return TranslationResult(
            sql=final,
            usage=usage,
            degradation_level=outcome.level,
            retries=retries,
            events=tuple(events),
        )


@register("dail")
def _make_dail(*, llm=None, train=None, budget=None, consistency_n=None,
               seed=None, **config):
    """DAIL-SQL's selection is deterministic, so ``seed`` is unused."""
    approach = DAILSQL(
        llm,
        budget=DEFAULT_BUDGET if budget is None else budget,
        consistency_n=(
            DEFAULT_DAIL_CONSISTENCY_N if consistency_n is None
            else consistency_n
        ),
        **config,
    )
    return approach.fit(train) if train is not None else approach
