"""Baseline NL2SQL approaches (§V-A3).

All implement the same :class:`~repro.eval.harness.NL2SQLApproach`
protocol as PURPLE, so the benchmark harness treats them uniformly:

* :class:`ZeroShotSQL` — plain zero-shot prompting (ChatGPT-SQL, and the
  DIN-SQL paper's GPT4 zero-shot row);
* :class:`FewShotRandom` — random demonstrations to budget (GPT4 few-shot);
* :class:`C3` — calibrated zero-shot: hand-crafted instructions, lexical
  schema pruning, execution-consistency voting;
* :class:`DINSQL` — static chain-of-thought demonstration set with a
  self-correction second call;
* :class:`DAILSQL` — demonstration selection by masked-question similarity
  plus order-insensitive SQL-keyword Jaccard (the similarity the paper
  criticizes in §IV-C1);
* :class:`PLMSeq2SQL` — the PLM-based family representative
  (RESDSQL-style: pruned schema → skeleton → slot filling, no LLM).
"""

from repro.baselines.c3 import C3
from repro.baselines.dail_sql import DAILSQL
from repro.baselines.din_sql import DINSQL
from repro.baselines.plm_seq2seq import PLMSeq2SQL
from repro.baselines.zero_few import FewShotRandom, ZeroShotSQL

__all__ = [
    "C3",
    "DAILSQL",
    "DINSQL",
    "PLMSeq2SQL",
    "FewShotRandom",
    "ZeroShotSQL",
]
