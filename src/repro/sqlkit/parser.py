"""Recursive-descent parser for the Spider SQL subset.

``parse_sql`` turns an SQL string into the AST of :mod:`repro.sqlkit.ast_nodes`.
The grammar intentionally mirrors what Spider's gold queries use, plus the
slightly-malformed constructs LLMs emit (e.g. ``CONCAT(...)`` calls and
multi-argument aggregates) so that the database-adaption module can parse
buggy SQL before repairing it.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    JoinedTable,
    LikeExpr,
    Literal,
    Node,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    ValueList,
)
from repro.sqlkit.errors import SQLParseError
from repro.sqlkit.keywords import AGG_FUNCS, IUE_OPS
from repro.sqlkit.tokens import Token, TokenKind, tokenize

_CMP_OPS = {"<", "<=", ">", ">=", "=", "!="}
_ARITH_ADD = {"+", "-", "||"}
_ARITH_MUL = {"*", "/"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token-stream helpers ------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        """The token at the given lookahead offset, or None."""
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def at_keyword(self, *names: str) -> bool:
        """Whether the current token is one of the given keywords."""
        tok = self.peek()
        return tok is not None and tok.is_keyword(*names)

    def at_punct(self, value: str) -> bool:
        """Whether the current token is this punctuation mark."""
        tok = self.peek()
        return tok is not None and tok.kind is TokenKind.PUNCT and tok.value == value

    def advance(self) -> Token:
        """Consume and return the current token."""
        tok = self.peek()
        if tok is None:
            raise SQLParseError("unexpected end of input", self.pos)
        self.pos += 1
        return tok

    def expect_keyword(self, *names: str) -> Token:
        """Consume a required keyword or raise SQLParseError."""
        tok = self.peek()
        if tok is None or not tok.is_keyword(*names):
            raise SQLParseError(
                f"expected {'/'.join(names)}, found {tok.value if tok else 'EOF'}",
                self.pos,
            )
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        """Consume required punctuation or raise SQLParseError."""
        tok = self.peek()
        if tok is None or tok.kind is not TokenKind.PUNCT or tok.value != value:
            raise SQLParseError(
                f"expected {value!r}, found {tok.value if tok else 'EOF'}", self.pos
            )
        return self.advance()

    def accept_keyword(self, *names: str) -> bool:
        """Consume the keyword if present; report whether it was."""
        if self.at_keyword(*names):
            self.advance()
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> Query:
        """query := select_core (IUE select_core)*"""
        core = self.parse_select_core()
        compounds: list[tuple] = []
        while self.at_keyword(*IUE_OPS):
            op = self.advance().value
            rhs = self.parse_select_core()
            compounds.append((op, rhs))
        return Query(core=core, compounds=compounds)

    def parse_select_core(self) -> SelectCore:
        """One SELECT block with all optional clauses."""
        self.expect_keyword("SELECT")
        core = SelectCore()
        core.distinct = self.accept_keyword("DISTINCT")
        core.items = [self.parse_select_item()]
        while self.at_punct(","):
            self.advance()
            core.items.append(self.parse_select_item())
        if self.accept_keyword("FROM"):
            core.from_clause = self.parse_from_clause()
        if self.accept_keyword("WHERE"):
            core.where = self.parse_condition()
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            core.group_by = [self.parse_value_expr()]
            while self.at_punct(","):
                self.advance()
                core.group_by.append(self.parse_value_expr())
        if self.accept_keyword("HAVING"):
            core.having = self.parse_condition()
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            core.order_by = [self.parse_order_item()]
            while self.at_punct(","):
                self.advance()
                core.order_by.append(self.parse_order_item())
        if self.accept_keyword("LIMIT"):
            tok = self.advance()
            if tok.kind is not TokenKind.NUMBER:
                raise SQLParseError("LIMIT requires a number", self.pos - 1)
            core.limit = int(float(tok.value))
        elif self.at_keyword("FETCH"):
            # ANSI row limiting: FETCH FIRST <n> ROWS ONLY.
            self.advance()
            self.expect_keyword("FIRST")
            tok = self.advance()
            if tok.kind is not TokenKind.NUMBER:
                raise SQLParseError(
                    "FETCH FIRST requires"  # noqa: no-inline-dialect-literal
                    " a number",
                    self.pos - 1,
                )
            core.limit = int(float(tok.value))
            self.expect_keyword("ROWS")
            self.expect_keyword("ONLY")
            core.limit_form = "fetch"
        return core

    def parse_select_item(self) -> SelectItem:
        """One projection, with an optional alias."""
        expr = self.parse_value_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self._expect_name()
        elif (tok := self.peek()) is not None and tok.kind is TokenKind.IDENT:
            # Bare alias (``SELECT count(*) n``) — rare but LLMs emit it.
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> OrderItem:
        """One ORDER BY key with its direction."""
        expr = self.parse_value_expr()
        direction = "ASC"
        if self.at_keyword("ASC", "DESC"):
            direction = self.advance().value
        return OrderItem(expr=expr, direction=direction)

    # -- FROM ----------------------------------------------------------------

    def parse_from_clause(self) -> FromClause:
        """FROM with any number of (LEFT/INNER) JOINs."""
        first = self.parse_table_source()
        clause = FromClause(first=first)
        while True:
            kind = None
            if self.at_keyword("JOIN", "INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                kind = "JOIN"
            elif self.at_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT JOIN"
            elif self.at_punct(","):
                # Comma join (implicit cross join) — normalize to JOIN.
                self.advance()
                kind = "JOIN"
            else:
                break
            source = self.parse_table_source()
            on = None
            if self.accept_keyword("ON"):
                on = self.parse_condition()
            clause.joins.append(JoinedTable(source=source, on=on, kind=kind))
        return clause

    def parse_table_source(self) -> Node:
        """A base table or parenthesized derived table."""
        if self.at_punct("("):
            self.advance()
            query = self.parse_query()
            self.expect_punct(")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self._expect_name()
            elif (tok := self.peek()) is not None and tok.kind is TokenKind.IDENT:
                alias = self.advance().value
            return SubquerySource(query=query, alias=alias)
        name = self._expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self._expect_name()
        elif (tok := self.peek()) is not None and tok.kind is TokenKind.IDENT:
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    # -- conditions ------------------------------------------------------------

    def parse_condition(self) -> Node:
        """Boolean condition with AND/OR precedence."""
        return self._parse_or()

    def _parse_or(self) -> Node:
        terms = [self._parse_and()]
        while self.at_keyword("OR"):
            self.advance()
            terms.append(self._parse_and())
        return terms[0] if len(terms) == 1 else BoolOp(op="OR", terms=terms)

    def _parse_and(self) -> Node:
        terms = [self._parse_predicate()]
        while self.at_keyword("AND"):
            self.advance()
            terms.append(self._parse_predicate())
        return terms[0] if len(terms) == 1 else BoolOp(op="AND", terms=terms)

    def _parse_predicate(self) -> Node:
        if self.accept_keyword("NOT"):
            inner = self._parse_predicate()
            return _negate(inner)
        if self.at_punct("("):
            # Either a grouped condition or a parenthesized subquery used in
            # a comparison; disambiguate by looking for SELECT.
            nxt = self.peek(1)
            if nxt is not None and nxt.is_keyword("SELECT"):
                left: Node = self._parse_primary()
            else:
                self.advance()
                cond = self.parse_condition()
                self.expect_punct(")")
                return cond
        else:
            left = self.parse_value_expr()
        return self._parse_predicate_tail(left)

    def _parse_predicate_tail(self, left: Node) -> Node:
        tok = self.peek()
        if tok is None:
            raise SQLParseError("condition missing operator", self.pos)
        if tok.kind is TokenKind.OP and tok.value in _CMP_OPS:
            op = self.advance().value
            right = self.parse_value_expr()
            return Comparison(op=op, left=left, right=right)
        negated = False
        if tok.is_keyword("NOT"):
            negated = True
            self.advance()
            tok = self.peek()
            if tok is None:
                raise SQLParseError("NOT missing predicate", self.pos)
        if tok.is_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            if self.at_keyword("SELECT"):
                source: Node = Subquery(query=self.parse_query())
            else:
                values = [self._parse_literal_or_expr()]
                while self.at_punct(","):
                    self.advance()
                    values.append(self._parse_literal_or_expr())
                source = ValueList(values=values)
            self.expect_punct(")")
            return InExpr(left=left, source=source, negated=negated)
        if tok.is_keyword("LIKE"):
            self.advance()
            pattern = self.parse_value_expr()
            return LikeExpr(left=left, pattern=pattern, negated=negated)
        if tok.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_value_expr()
            self.expect_keyword("AND")
            high = self.parse_value_expr()
            return BetweenExpr(left=left, low=low, high=high, negated=negated)
        if tok.is_keyword("IS"):
            self.advance()
            neg = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNullExpr(left=left, negated=neg or negated)
        raise SQLParseError(f"unexpected token {tok.value!r} in condition", self.pos)

    def _parse_literal_or_expr(self) -> Node:
        return self.parse_value_expr()

    # -- value expressions -----------------------------------------------------

    def parse_value_expr(self) -> Node:
        """Value expression with arithmetic precedence."""
        return self._parse_additive()

    def _parse_additive(self) -> Node:
        left = self._parse_multiplicative()
        while (tok := self.peek()) is not None and tok.kind is TokenKind.OP and tok.value in _ARITH_ADD:
            op = self.advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> Node:
        left = self._parse_primary()
        while (tok := self.peek()) is not None and tok.kind is TokenKind.OP and tok.value in _ARITH_MUL:
            # ``*`` directly after "SELECT" or "(" was consumed as Star by
            # _parse_primary, so reaching here really is multiplication.
            op = self.advance().value
            right = self._parse_primary()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_primary(self) -> Node:
        tok = self.peek()
        if tok is None:
            raise SQLParseError("unexpected end of expression", self.pos)
        if tok.kind is TokenKind.OP and tok.value == "*":
            self.advance()
            return Star()
        if tok.kind is TokenKind.OP and tok.value == "-":
            # Unary minus: negate the following primary.
            self.advance()
            inner = self._parse_primary()
            if isinstance(inner, Literal) and inner.kind == "number":
                return Literal.number(-inner.value)
            return BinaryOp(op="-", left=Literal.number(0), right=inner)
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            text = tok.value
            value = float(text) if "." in text else int(text)
            return Literal.number(value)
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal.string(tok.value)
        if tok.is_keyword("NULL"):
            self.advance()
            return Literal(None, "null")
        if tok.is_keyword(*AGG_FUNCS):
            return self._parse_call(is_agg=True)
        if tok.is_keyword("CONCAT"):
            return self._parse_call(is_agg=False)
        if self.at_punct("("):
            nxt = self.peek(1)
            if nxt is not None and nxt.is_keyword("SELECT"):
                self.advance()
                query = self.parse_query()
                self.expect_punct(")")
                return Subquery(query=query)
            self.advance()
            expr = self.parse_value_expr()
            self.expect_punct(")")
            return expr
        if tok.kind is TokenKind.IDENT:
            nxt = self.peek(1)
            if nxt is not None and nxt.kind is TokenKind.PUNCT and nxt.value == "(":
                return self._parse_call(is_agg=False)
            return self._parse_column_ref()
        if tok.is_keyword("FETCH", "FIRST", "ROWS", "ONLY"):
            # The ANSI row-limiting words are keywords only inside the
            # FETCH clause (handled at clause level); in expression
            # position they are ordinary column names (``WHERE rows <
            # 0`` predates the FETCH FIRST support).
            return self._parse_column_ref()
        raise SQLParseError(f"unexpected token {tok.value!r} in expression", self.pos)

    def _parse_call(self, is_agg: bool) -> Node:
        name = self.advance().value
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        args: list[Node] = []
        if not self.at_punct(")"):
            args.append(self.parse_value_expr())
            while self.at_punct(","):
                self.advance()
                args.append(self.parse_value_expr())
        self.expect_punct(")")
        if is_agg:
            return Agg(func=name.upper(), args=args, distinct=distinct)
        return FuncCall(name=name.upper(), args=args)

    def _parse_column_ref(self) -> Node:
        first = self._expect_name()
        if self.at_punct("."):
            self.advance()
            tok = self.peek()
            if tok is not None and tok.kind is TokenKind.OP and tok.value == "*":
                self.advance()
                return Star(table=first)
            column = self._expect_name()
            return ColumnRef(column=column, table=first)
        return ColumnRef(column=first)

    def _expect_name(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SQLParseError("expected identifier, found EOF", self.pos)
        if tok.kind is TokenKind.IDENT:
            return self.advance().value
        # Keywords used as identifiers (columns named "year", "count", ...)
        # are tolerated when a name is required.
        if tok.kind is TokenKind.KEYWORD:
            return self.advance().value
        raise SQLParseError(f"expected identifier, found {tok.value!r}", self.pos)


def _negate(node: Node) -> Node:
    """Push a leading NOT into the predicate node."""
    if isinstance(node, (InExpr, LikeExpr, BetweenExpr, IsNullExpr)):
        node.negated = not node.negated
        return node
    if isinstance(node, Comparison):
        flip = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}
        node.op = flip[node.op]
        return node
    raise SQLParseError("NOT applied to unsupported predicate")


def parse_sql(sql: str) -> Query:
    """Parse an SQL string into a :class:`Query` AST.

    Raises :class:`SQLParseError` / :class:`SQLTokenizeError` on malformed
    input.  Trailing semicolons are permitted.
    """
    tokens = [t for t in tokenize(sql) if not (t.kind is TokenKind.PUNCT and t.value == ";")]
    parser = _Parser(tokens)
    query = parser.parse_query()
    if parser.pos != len(tokens):
        leftover = tokens[parser.pos]
        raise SQLParseError(f"unparsed trailing input {leftover.value!r}", parser.pos)
    return query
