"""The four-level skeleton abstraction hierarchy (§IV-C1, Figure 6).

Level 1 (Detail) keeps placeholders; level 2 (Keywords) drops them to
focus on operators; level 3 (Structure) generalizes operators into the
Figure-7 classes (``<AGG>``, ``<CMP>``, ``<IUE>``, ``<OP>``); level 4
(Clause) keeps only the principal clause keywords and ``<IUE>``.
"""

from __future__ import annotations

from repro.sqlkit.keywords import CLAUSE_KEYWORDS, structure_class
from repro.sqlkit.skeleton import PLACEHOLDER, skeleton_tokens

LEVELS = ("detail", "keywords", "structure", "clause")

_CLAUSE_KEEP = set(CLAUSE_KEYWORDS) | {"<IUE>"}


def abstract_tokens(tokens: list, level: int) -> tuple:
    """Abstract detail-level skeleton tokens to the given level (1-4).

    Input tokens are as produced by
    :func:`repro.sqlkit.skeleton.skeleton_tokens`.
    """
    if level not in (1, 2, 3, 4):
        raise ValueError(f"abstraction level must be 1..4, got {level}")
    if level == 1:
        return tuple(tokens)
    keywords = [t for t in tokens if t != PLACEHOLDER and t != ","]
    if level == 2:
        return tuple(keywords)
    structure = [structure_class(t) if t not in ("(", ")") else t for t in keywords]
    if level == 3:
        return tuple(structure)
    return tuple(t for t in structure if t in _CLAUSE_KEEP)


def abstract_sql(sql: str, level: int) -> tuple:
    """Abstraction of a full SQL string at the given level."""
    return abstract_tokens(skeleton_tokens(sql), level)


def abstraction_levels(tokens: list) -> dict:
    """All four abstractions of a detail-level token list."""
    return {level: abstract_tokens(tokens, level) for level in (1, 2, 3, 4)}
