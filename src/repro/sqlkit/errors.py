"""Exception types raised by the SQL toolkit."""

from __future__ import annotations


class SQLError(ValueError):
    """Base class for all SQL toolkit errors."""


class SQLTokenizeError(SQLError):
    """Raised when the tokenizer encounters an unrecognized character."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} at position {position}")
        self.position = position


class SQLParseError(SQLError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message: str, position: int = -1):
        suffix = f" at token {position}" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position
