"""From-scratch SQL toolkit for the Spider SQL subset.

This package replaces the external SQL toolchain (sqlglot et al.) the paper
relied on.  It provides:

* a tokenizer (:mod:`repro.sqlkit.tokens`),
* a typed AST (:mod:`repro.sqlkit.ast_nodes`),
* a recursive-descent parser (:mod:`repro.sqlkit.parser`),
* a canonical renderer (:mod:`repro.sqlkit.render`),
* SQL-skeleton extraction as defined in PURPLE §II-C
  (:mod:`repro.sqlkit.skeleton`), and
* the official Spider hardness classifier (:mod:`repro.sqlkit.hardness`).
"""

from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    JoinedTable,
    LikeExpr,
    Literal,
    Node,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    ValueList,
    clone,
    walk,
)
from repro.sqlkit.errors import SQLError, SQLParseError, SQLTokenizeError
from repro.sqlkit.hardness import Hardness, classify_hardness
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.render import render_sql
from repro.sqlkit.skeleton import PLACEHOLDER, extract_skeleton, skeleton_tokens
from repro.sqlkit.spans import identifier_span, identifier_spans, token_at
from repro.sqlkit.tokens import Token, TokenKind, tokenize

__all__ = [
    "Agg",
    "BetweenExpr",
    "BinaryOp",
    "BoolOp",
    "ColumnRef",
    "Comparison",
    "FromClause",
    "FuncCall",
    "InExpr",
    "IsNullExpr",
    "JoinedTable",
    "LikeExpr",
    "Literal",
    "Node",
    "OrderItem",
    "Query",
    "SelectCore",
    "SelectItem",
    "Star",
    "Subquery",
    "SubquerySource",
    "TableRef",
    "ValueList",
    "clone",
    "walk",
    "SQLError",
    "SQLParseError",
    "SQLTokenizeError",
    "Hardness",
    "classify_hardness",
    "parse_sql",
    "render_sql",
    "PLACEHOLDER",
    "extract_skeleton",
    "skeleton_tokens",
    "identifier_span",
    "identifier_spans",
    "token_at",
    "Token",
    "TokenKind",
    "tokenize",
]
