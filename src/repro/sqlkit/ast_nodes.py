"""Typed AST for the Spider SQL subset.

The node set covers everything the Spider family of benchmarks uses:
single-table and multi-join SELECT cores, WHERE/GROUP BY/HAVING/ORDER
BY/LIMIT clauses, aggregations with DISTINCT, arithmetic, (NOT) IN /
LIKE / BETWEEN predicates, scalar and IN-subqueries, FROM-subqueries, and
INTERSECT / UNION / EXCEPT compounds.

All nodes are plain dataclasses.  Mutation is allowed (the database-adaption
module rewrites trees in place via :func:`clone`), but shared helpers such as
``walk`` treat the tree as read-only.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Iterator, Optional, Union


class Node:
    """Base class for all AST nodes (marker only)."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes in source order."""
        if not is_dataclass(self):  # pragma: no cover - all nodes are
            return
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def clone(node: Node) -> Node:
    """Deep-copy an AST subtree."""
    return copy.deepcopy(node)


# --------------------------------------------------------------------------
# Value expressions
# --------------------------------------------------------------------------


@dataclass
class Literal(Node):
    """A constant: ``kind`` is one of ``"string"``, ``"number"``, ``"null"``."""

    value: Union[str, int, float, None]
    kind: str = "string"

    @staticmethod
    def number(value: Union[int, float]) -> "Literal":
        """Numeric literal constructor."""
        return Literal(value, "number")

    @staticmethod
    def string(value: str) -> "Literal":
        """String literal constructor."""
        return Literal(value, "string")


@dataclass
class ColumnRef(Node):
    """A (possibly qualified) column reference like ``T1.country``."""

    column: str
    table: Optional[str] = None

    def key(self) -> str:
        """Case-insensitive comparison key."""
        t = (self.table or "").lower()
        return f"{t}.{self.column.lower()}" if t else self.column.lower()


@dataclass
class Star(Node):
    """``*`` or ``T1.*``."""

    table: Optional[str] = None


@dataclass
class Agg(Node):
    """An aggregation call, e.g. ``COUNT(DISTINCT T1.name)``.

    ``args`` has one element for well-formed SQL; the
    aggregation-hallucination error class produces multiple elements, which
    the adaption module splits.
    """

    func: str
    args: list[Node] = field(default_factory=list)
    distinct: bool = False


@dataclass
class FuncCall(Node):
    """A non-aggregate function call (e.g. the hallucinated ``CONCAT``)."""

    name: str
    args: list[Node] = field(default_factory=list)


@dataclass
class BinaryOp(Node):
    """Arithmetic expression ``left op right`` with op in ``+ - * /``."""

    op: str
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]


@dataclass
class Subquery(Node):
    """A parenthesized query used as a value or IN-source."""

    query: "Query" = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


@dataclass
class Comparison(Node):
    """``left op right`` with op in ``< <= > >= = !=``."""

    op: str
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]


@dataclass
class InExpr(Node):
    """``left [NOT] IN (subquery | value list)``."""

    left: Node = None  # type: ignore[assignment]
    source: Node = None  # type: ignore[assignment]  # Subquery or ValueList
    negated: bool = False


@dataclass
class ValueList(Node):
    """A literal tuple for IN-lists: ``(1, 2, 3)``."""

    values: list[Node] = field(default_factory=list)


@dataclass
class LikeExpr(Node):
    """``left [NOT] LIKE pattern``."""

    left: Node = None  # type: ignore[assignment]
    pattern: Node = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class BetweenExpr(Node):
    """``left BETWEEN low AND high``."""

    left: Node = None  # type: ignore[assignment]
    low: Node = None  # type: ignore[assignment]
    high: Node = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class IsNullExpr(Node):
    """``left IS [NOT] NULL``."""

    left: Node = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class BoolOp(Node):
    """N-ary AND/OR.  ``terms`` preserves source order."""

    op: str  # "AND" | "OR"
    terms: list[Node] = field(default_factory=list)


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------


@dataclass
class TableRef(Node):
    """A base-table source, e.g. ``tv_channel AS T1``."""

    name: str
    alias: Optional[str] = None

    def binding(self) -> str:
        """The name this source is referred to by (alias if present)."""
        return (self.alias or self.name).lower()


@dataclass
class SubquerySource(Node):
    """A derived-table source: ``(SELECT ...) AS alias``."""

    query: "Query" = None  # type: ignore[assignment]
    alias: Optional[str] = None

    def binding(self) -> str:
        """The name this source is referred to by."""
        return (self.alias or "").lower()


@dataclass
class JoinedTable(Node):
    """One ``JOIN source ON condition`` step (``on`` may be absent)."""

    source: Node = None  # type: ignore[assignment]  # TableRef|SubquerySource
    on: Optional[Node] = None
    kind: str = "JOIN"  # "JOIN" | "LEFT JOIN"


@dataclass
class FromClause(Node):
    """``FROM first JOIN ... JOIN ...``."""

    first: Node = None  # type: ignore[assignment]  # TableRef|SubquerySource
    joins: list[JoinedTable] = field(default_factory=list)

    def sources(self) -> list[Node]:
        """All table sources in order (first, then each join's source)."""
        return [self.first] + [j.source for j in self.joins]

    def table_refs(self) -> list[TableRef]:
        """Only the base-table sources."""
        return [s for s in self.sources() if isinstance(s, TableRef)]


# --------------------------------------------------------------------------
# SELECT core and full query
# --------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One projection, optionally aliased (``expr AS alias``)."""

    expr: Node = None  # type: ignore[assignment]
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    """One ORDER BY key with direction (``"ASC"`` or ``"DESC"``)."""

    expr: Node = None  # type: ignore[assignment]
    direction: str = "ASC"


@dataclass
class SelectCore(Node):
    """A single SELECT block without set operators.

    ``limit_form`` records which row-limit surface syntax the source
    used: ``"limit"`` for ``LIMIT n`` (SQLite/MySQL/Postgres extension)
    or ``"fetch"`` for the ANSI ``FETCH FIRST n ROWS ONLY``.  Both set
    ``limit``; the renderer picks the target dialect's form regardless.
    """

    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_clause: Optional[FromClause] = None
    where: Optional[Node] = None
    group_by: list[Node] = field(default_factory=list)
    having: Optional[Node] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    limit_form: str = "limit"


@dataclass
class Query(Node):
    """A full query: a SELECT core plus zero or more IUE compounds.

    ``SELECT a FROM t EXCEPT SELECT b FROM u`` is represented as
    ``Query(core=<a>, compounds=[("EXCEPT", <b>)])``.
    """

    core: SelectCore = None  # type: ignore[assignment]
    compounds: list[tuple] = field(default_factory=list)  # (op, SelectCore|Query)

    def children(self) -> Iterator[Node]:
        """Yield direct child nodes in source order."""
        if self.core is not None:
            yield self.core
        for _, rhs in self.compounds:
            if isinstance(rhs, Node):
                yield rhs

    def all_cores(self) -> list[SelectCore]:
        """All SELECT cores in this query, left to right (not descending
        into subqueries)."""
        cores = [self.core]
        for _, rhs in self.compounds:
            if isinstance(rhs, Query):
                cores.extend(rhs.all_cores())
            else:
                cores.append(rhs)
        return cores
