"""Keyword and operator tables for the Spider SQL subset.

The structure-level mapping rules (``<AGG>``, ``<CMP>``, ``<IUE>``, ``<OP>``)
come straight from Figure 7 of the paper.
"""

from __future__ import annotations

# Reserved words recognized by the tokenizer (upper-case canonical form).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "AS",
        "JOIN",
        "ON",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "ASC",
        "DESC",
        "AND",
        "OR",
        "NOT",
        "IN",
        "LIKE",
        "BETWEEN",
        "INTERSECT",
        "UNION",
        "EXCEPT",
        "COUNT",
        "MAX",
        "MIN",
        "SUM",
        "AVG",
        "IS",
        "NULL",
        "LEFT",
        "OUTER",
        "INNER",
        "CONCAT",
    }
)

# Aggregation function names (Figure 7: <AGG>).
AGG_FUNCS = ("COUNT", "MAX", "MIN", "SUM", "AVG")

# Comparison operators (Figure 7: <CMP>).  Multi-word operators are stored
# space-joined in their canonical form.
CMP_OPS = (
    "<",
    "<=",
    ">",
    ">=",
    "=",
    "!=",
    "BETWEEN",
    "NOT LIKE",
    "LIKE",
    "NOT IN",
    "IN",
)

# Set operators (Figure 7: <IUE>).
IUE_OPS = ("INTERSECT", "UNION", "EXCEPT")

# Arithmetic operators (Figure 7: <OP>).
ARITH_OPS = ("+", "-", "*", "/", "||")

# Clause-introducing keywords kept at the Clause-Level abstraction (§IV-C1).
# Multi-word clauses are canonicalized to single tokens.
CLAUSE_KEYWORDS = (
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP BY",
    "HAVING",
    "ORDER BY",
    "LIMIT",
)

# Structure-level token classes (Figure 7).
STRUCTURE_CLASSES = {
    **{op: "<CMP>" for op in CMP_OPS},
    **{op: "<IUE>" for op in IUE_OPS},
    **{op: "<OP>" for op in ARITH_OPS},
    **{fn: "<AGG>" for fn in AGG_FUNCS},
}


def structure_class(token: str) -> str:
    """Map a keywords-level token to its structure-level class.

    Tokens without a Figure-7 class map to themselves.
    """
    return STRUCTURE_CLASSES.get(token.upper(), token.upper())
