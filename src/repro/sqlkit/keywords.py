"""Keyword and operator tables for the Spider SQL subset.

The structure-level mapping rules (``<AGG>``, ``<CMP>``, ``<IUE>``, ``<OP>``)
come straight from Figure 7 of the paper.
"""

from __future__ import annotations

# Reserved words recognized by the tokenizer (upper-case canonical form).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "AS",
        "JOIN",
        "ON",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "ASC",
        "DESC",
        "AND",
        "OR",
        "NOT",
        "IN",
        "LIKE",
        "BETWEEN",
        "INTERSECT",
        "UNION",
        "EXCEPT",
        "COUNT",
        "MAX",
        "MIN",
        "SUM",
        "AVG",
        "IS",
        "NULL",
        "LEFT",
        "OUTER",
        "INNER",
        "CONCAT",
        "FETCH",
        "FIRST",
        "ROWS",
        "ONLY",
    }
)

# ---------------------------------------------------------------------------
# Per-dialect reserved words.
#
# A word is *reserved* in a dialect when it cannot appear as a bare
# (unquoted) identifier there.  The sets differ meaningfully: Postgres
# reserves ``user`` and ``order`` outright, MySQL 8 reserves the window
# function names (``rank``, ``groups``), while SQLite accepts most
# keywords as identifiers when the context is unambiguous.  The SQLite
# entry is the grammar's own keyword set — the words our tokenizer
# treats specially — so it doubles as the "portability baseline":
# dialect checks flag only the words reserved in the *target* dialect
# beyond this baseline.
# ---------------------------------------------------------------------------

#: Words Postgres reserves (subset of the full list relevant to the
#: Spider surface: these cannot be bare column/table names).
POSTGRES_RESERVED = frozenset(
    {
        "ALL", "ANALYZE", "AND", "ANY", "ARRAY", "AS", "ASC", "BOTH",
        "CASE", "CAST", "CHECK", "COLLATE", "COLUMN", "CONSTRAINT",
        "CREATE", "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
        "CURRENT_USER", "DEFAULT", "DESC", "DISTINCT", "DO", "ELSE",
        "END", "EXCEPT", "FALSE", "FETCH", "FOR", "FOREIGN", "FROM",
        "GRANT", "GROUP", "HAVING", "IN", "INTERSECT", "INTO",
        "LATERAL", "LEADING", "LIMIT", "LOCALTIME", "LOCALTIMESTAMP",
        "NOT", "NULL", "OFFSET", "ON", "ONLY", "OR", "ORDER", "PLACING",
        "PRIMARY", "REFERENCES", "RETURNING", "SELECT", "SESSION_USER",
        "SOME", "SYMMETRIC", "TABLE", "THEN", "TO", "TRAILING", "TRUE",
        "UNION", "UNIQUE", "USER", "USING", "VARIADIC", "WHEN", "WHERE",
        "WINDOW", "WITH",
    }
)

#: Words MySQL 8 reserves.  Notable beyond the common core: the window
#: function names (``RANK``, ``DENSE_RANK``, ``ROW_NUMBER``, ...) became
#: reserved in 8.0, and ``ROWS``/``GROUPS`` joined them.
MYSQL_RESERVED = frozenset(
    {
        "ALL", "AND", "AS", "ASC", "BETWEEN", "BY", "CASE", "CHECK",
        "COLUMN", "CONSTRAINT", "CREATE", "CROSS", "CUBE",
        "CUME_DIST", "DEFAULT", "DENSE_RANK", "DESC", "DISTINCT",
        "DIV", "ELSE", "EXISTS", "FETCH", "FIRST_VALUE", "FOR",
        "FOREIGN", "FROM", "GROUP", "GROUPS", "HAVING", "IN", "INNER",
        "INTERVAL", "INTO", "IS", "JOIN", "KEY", "LAG", "LAST_VALUE",
        "LATERAL", "LEAD", "LEFT", "LIKE", "LIMIT", "NOT", "NTH_VALUE",
        "NTILE", "NULL", "OF", "ON", "OR", "ORDER", "OUTER", "OVER",
        "PARTITION", "PERCENT_RANK", "PRIMARY", "RANGE", "RANK",
        "RECURSIVE", "REFERENCES", "RIGHT", "ROW", "ROWS",
        "ROW_NUMBER", "SELECT", "TABLE", "THEN", "TO", "TRUE", "UNION",
        "UNIQUE", "UPDATE", "USING", "VALUES", "WHEN", "WHERE",
        "WINDOW", "WITH",
    }
)

#: dialect name -> reserved-word set (upper-case canonical form).
RESERVED_WORDS = {
    "sqlite": KEYWORDS,
    "postgres": POSTGRES_RESERVED,
    "mysql": MYSQL_RESERVED,
}


def reserved_in(dialect: str) -> frozenset:
    """The reserved-word set of ``dialect`` (KeyError on unknown names)."""
    return RESERVED_WORDS[dialect]

# Aggregation function names (Figure 7: <AGG>).
AGG_FUNCS = ("COUNT", "MAX", "MIN", "SUM", "AVG")

# Comparison operators (Figure 7: <CMP>).  Multi-word operators are stored
# space-joined in their canonical form.
CMP_OPS = (
    "<",
    "<=",
    ">",
    ">=",
    "=",
    "!=",
    "BETWEEN",
    "NOT LIKE",
    "LIKE",
    "NOT IN",
    "IN",
)

# Set operators (Figure 7: <IUE>).
IUE_OPS = ("INTERSECT", "UNION", "EXCEPT")

# Arithmetic operators (Figure 7: <OP>).
ARITH_OPS = ("+", "-", "*", "/", "||")

# Clause-introducing keywords kept at the Clause-Level abstraction (§IV-C1).
# Multi-word clauses are canonicalized to single tokens.
CLAUSE_KEYWORDS = (
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP BY",
    "HAVING",
    "ORDER BY",
    "LIMIT",
)

# Structure-level token classes (Figure 7).
STRUCTURE_CLASSES = {
    **{op: "<CMP>" for op in CMP_OPS},
    **{op: "<IUE>" for op in IUE_OPS},
    **{op: "<OP>" for op in ARITH_OPS},
    **{fn: "<AGG>" for fn in AGG_FUNCS},
}


def structure_class(token: str) -> str:
    """Map a keywords-level token to its structure-level class.

    Tokens without a Figure-7 class map to themselves.
    """
    return STRUCTURE_CLASSES.get(token.upper(), token.upper())
