"""Spider's official SQL hardness classification (easy/medium/hard/extra).

This reimplements the component-counting rules of Spider's ``evaluation.py``
on our AST.  Figure 9 of the paper buckets accuracy by these labels.
"""

from __future__ import annotations

import enum

from repro.sqlkit.ast_nodes import (
    Agg,
    BoolOp,
    LikeExpr,
    Node,
    Query,
    SelectCore,
    Subquery,
    SubquerySource,
    walk,
)
from repro.sqlkit.parser import parse_sql


class Hardness(str, enum.Enum):
    """Spider's four official difficulty levels."""
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA = "extra"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ORDERED_LEVELS = (Hardness.EASY, Hardness.MEDIUM, Hardness.HARD, Hardness.EXTRA)


def classify_hardness(sql_or_query) -> Hardness:
    """Classify a SQL string or parsed :class:`Query` into a hardness level."""
    query = sql_or_query if isinstance(sql_or_query, Query) else parse_sql(sql_or_query)
    comp1 = _count_component1(query)
    comp2 = _count_component2(query)
    others = _count_others(query)

    if comp1 <= 1 and others == 0 and comp2 == 0:
        return Hardness.EASY
    if (others <= 2 and comp1 <= 1 and comp2 == 0) or (
        comp1 <= 2 and others < 2 and comp2 == 0
    ):
        return Hardness.MEDIUM
    if (
        (others > 2 and comp1 <= 2 and comp2 == 0)
        or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
        or (comp1 <= 1 and others == 0 and comp2 <= 1)
    ):
        return Hardness.HARD
    return Hardness.EXTRA


def _top_level_cores(query: Query) -> list[SelectCore]:
    return query.all_cores()


def _count_component1(query: Query) -> int:
    """WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR, LIKE occurrences."""
    count = 0
    for core in _top_level_cores(query):
        if core.where is not None:
            count += 1
        if core.group_by:
            count += 1
        if core.order_by:
            count += 1
        if core.limit is not None:
            count += 1
        if core.from_clause is not None and len(core.from_clause.sources()) > 1:
            count += 1
        for node in _walk_core(core):
            if isinstance(node, BoolOp) and node.op == "OR":
                count += len(node.terms) - 1
            elif isinstance(node, LikeExpr):
                count += 1
    return count


def _count_component2(query: Query) -> int:
    """Nestedness: IUE compounds and subqueries."""
    count = len(query.compounds)
    for core in _top_level_cores(query):
        for node in _walk_core(core):
            if isinstance(node, (Subquery, SubquerySource)):
                count += 1
    return count


def _count_others(query: Query) -> int:
    """Number of "other" complexity axes exceeded (Spider's count_others)."""
    agg_count = 0
    select_cols = 0
    where_conds = 0
    group_cols = 0
    for core in _top_level_cores(query):
        select_cols = max(select_cols, len(core.items))
        group_cols = max(group_cols, len(core.group_by))
        where_conds = max(where_conds, _condition_count(core.where))
        aggs = sum(1 for n in _walk_core(core) if isinstance(n, Agg))
        agg_count = max(agg_count, aggs)
    others = 0
    if agg_count > 1:
        others += 1
    if select_cols > 1:
        others += 1
    if where_conds > 1:
        others += 1
    if group_cols > 1:
        others += 1
    return others


def _condition_count(cond: Node | None) -> int:
    if cond is None:
        return 0
    if isinstance(cond, BoolOp):
        return sum(_condition_count(t) for t in cond.terms)
    return 1


def _walk_core(core: SelectCore):
    """Walk a core without descending into sibling compound cores."""
    yield from walk(core)
