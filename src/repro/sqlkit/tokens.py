"""SQL tokenizer for the Spider SQL subset.

The tokenizer is deliberately forgiving about identifier quoting styles
(backticks, double quotes, square brackets) because LLM output mixes them
freely; the database-adaption module relies on being able to tokenize
slightly malformed SQL before repairing it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sqlkit.errors import SQLTokenizeError
from repro.sqlkit.keywords import KEYWORDS


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the canonical form: keywords are upper-cased, identifiers
    keep their original spelling (comparison is case-insensitive downstream),
    strings keep their quoted text without the quotes.
    """

    kind: TokenKind
    value: str
    position: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}:{self.value}"


_MULTI_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_SINGLE_CHAR_OPS = "<>=+-*/|"
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize an SQL string into a list of :class:`Token`.

    Raises :class:`SQLTokenizeError` on characters that cannot start a token.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "'\"`[":
            token, i = _read_quoted(sql, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            token, i = _read_number(sql, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_word(sql, i)
            tokens.append(token)
            continue
        two = sql[i : i + 2]
        if two in _MULTI_CHAR_OPS:
            canonical = "!=" if two == "<>" else two
            tokens.append(Token(TokenKind.OP, canonical, i))
            i += 2
            continue
        if ch in _SINGLE_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLTokenizeError(f"unexpected character {ch!r}", i)
    return tokens


def _read_quoted(sql: str, start: int) -> tuple[Token, int]:
    """Read a quoted string or quoted identifier starting at ``start``."""
    quote = sql[start]
    close = "]" if quote == "[" else quote
    i = start + 1
    chars: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == close:
            # Doubled quote inside a string escapes it ('' -> ').
            if close in "'\"" and i + 1 < len(sql) and sql[i + 1] == close:
                chars.append(close)
                i += 2
                continue
            kind = TokenKind.STRING if quote == "'" else TokenKind.IDENT
            return Token(kind, "".join(chars), start), i + 1
        chars.append(ch)
        i += 1
    raise SQLTokenizeError("unterminated quoted token", start)


def _read_number(sql: str, start: int) -> tuple[Token, int]:
    i = start
    seen_dot = False
    while i < len(sql) and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            # A trailing dot followed by a non-digit ends the number (e.g.
            # "T1.col" never reaches here because idents are read first).
            if i + 1 >= len(sql) or not sql[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    return Token(TokenKind.NUMBER, sql[start:i], start), i


def _read_word(sql: str, start: int) -> tuple[Token, int]:
    i = start
    while i < len(sql) and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenKind.KEYWORD, upper, start), i
    return Token(TokenKind.IDENT, word, start), i
