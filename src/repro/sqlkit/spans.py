"""Source-span lookup over tokenized SQL.

The tokenizer records each token's character offset; this module turns
those offsets into identifier spans so diagnostics can point at the
offending name inside the original statement rather than just naming it.
SQL here is one logical line, so spans are ``(offset, length)`` pairs
within the statement string.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlkit.errors import SQLError
from repro.sqlkit.tokens import Token, TokenKind, tokenize


def identifier_spans(sql: str, name: str) -> list[tuple[int, int]]:
    """All ``(offset, length)`` spans of identifier ``name`` in ``sql``.

    Matching is case-insensitive and covers keywords used as identifiers
    (the tokenizer upper-cases keywords, so both kinds are checked).
    Returns an empty list when the SQL cannot be tokenized.
    """
    try:
        tokens = tokenize(sql)
    except SQLError:
        return []
    target = name.lower()
    spans = []
    for token in tokens:
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            if token.value.lower() == target:
                spans.append((token.position, len(token.value)))
    return spans


def identifier_span(
    sql: str, name: str, occurrence: int = 0
) -> Optional[tuple[int, int]]:
    """The ``occurrence``-th span of identifier ``name``, or None."""
    spans = identifier_spans(sql, name)
    if 0 <= occurrence < len(spans):
        return spans[occurrence]
    return None


def token_at(sql: str, offset: int) -> Optional[Token]:
    """The token covering character ``offset``, or None."""
    try:
        tokens = tokenize(sql)
    except SQLError:
        return None
    for token in tokens:
        if token.position <= offset < token.position + len(token.value):
            return token
    return None
