"""SQL-skeleton extraction (PURPLE §II-C).

A *skeleton* abstracts a SQL query from database specifics: every table,
column, alias, and constant value is replaced by the placeholder ``_`` while
all operational keywords are preserved.  The gold SQL of Figure 1b becomes::

    SELECT _ FROM _ EXCEPT SELECT _ FROM _ JOIN _ ON _ = _ WHERE _ = _

Skeletons are represented as token lists (``skeleton_tokens``) — the natural
input for the four-level automaton — and as strings (``extract_skeleton``).
"""

from __future__ import annotations

from repro.sqlkit.keywords import KEYWORDS
from repro.sqlkit.tokens import Token, TokenKind, tokenize

PLACEHOLDER = "_"

# Keywords that survive skeletonization.  Everything lexical that is not a
# keyword or operator collapses to the placeholder.
_KEPT_KEYWORDS = KEYWORDS - {"AS"}


def skeleton_tokens(sql: str) -> list[str]:
    """Tokenize SQL and abstract it into skeleton tokens.

    Adjacent placeholders produced by qualified names (``T1.country`` →
    ``_ . _``) and alias phrases (``cartoon AS T2`` → ``_ _``) are merged
    into a single ``_``.  Commas between placeholders are dropped (a
    projection list of any width is one placeholder), matching the paper's
    examples where ``SELECT a, b`` and ``SELECT a`` share a skeleton only at
    the placeholder level.
    """
    raw = tokenize(sql)
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        tok = raw[i]
        if _is_database_specific(tok):
            # Swallow the full qualified/aliased name run.
            i += 1
            while i < n and _continues_name(raw, i):
                i += 1
            _append_placeholder(out)
            continue
        if tok.kind is TokenKind.PUNCT and tok.value == ",":
            # Comma between placeholders merges them; keep commas that
            # separate non-placeholder constructs (e.g. between two aggs).
            if out and out[-1] == PLACEHOLDER and _next_is_specific(raw, i + 1):
                i += 1
                continue
            out.append(",")
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.value == ";":
            i += 1
            continue
        if tok.kind is TokenKind.KEYWORD and tok.value == "AS":
            i += 1
            continue
        if tok.kind is TokenKind.KEYWORD and tok.value not in _KEPT_KEYWORDS:
            i += 1
            continue
        if tok.kind is TokenKind.OP and tok.value == "*" and _star_is_projection(out):
            # ``*`` as a projection (SELECT *, COUNT(*)) is database-facing;
            # ``*`` between operands stays as the arithmetic operator.
            _append_placeholder(out)
            i += 1
            continue
        out.append(tok.value)
        i += 1
    return _merge_group_order(out)


def _star_is_projection(out: list[str]) -> bool:
    if not out:
        return True
    return out[-1] in ("SELECT", "DISTINCT", "(", ",")


def extract_skeleton(sql: str) -> str:
    """Return the skeleton of ``sql`` as a single string."""
    return " ".join(skeleton_tokens(sql))


def _append_placeholder(out: list[str]) -> None:
    if not out or out[-1] != PLACEHOLDER:
        out.append(PLACEHOLDER)
    else:
        # Two independent names merged; the paper keeps one placeholder per
        # database-specific element position, so a second consecutive name
        # (only possible via aliasing, e.g. ``cartoon AS T2``) stays merged.
        pass


def _is_database_specific(tok: Token) -> bool:
    return tok.kind in (TokenKind.IDENT, TokenKind.NUMBER, TokenKind.STRING)


def _continues_name(raw: list[Token], i: int) -> bool:
    """True while still inside one qualified/aliased name run."""
    tok = raw[i]
    if tok.kind is TokenKind.PUNCT and tok.value == ".":
        nxt = raw[i + 1] if i + 1 < len(raw) else None
        return nxt is not None and _is_database_specific(nxt)
    if _is_database_specific(tok):
        prev = raw[i - 1]
        return prev.kind is TokenKind.PUNCT and prev.value == "."
    if tok.kind is TokenKind.KEYWORD and tok.value == "AS":
        nxt = raw[i + 1] if i + 1 < len(raw) else None
        return nxt is not None and _is_database_specific(nxt)
    return False


def _next_is_specific(raw: list[Token], i: int) -> bool:
    return i < len(raw) and _is_database_specific(raw[i])


def _merge_group_order(tokens: list[str]) -> list[str]:
    """Canonicalize ``GROUP BY`` / ``ORDER BY`` into single tokens."""
    out: list[str] = []
    i = 0
    while i < len(tokens):
        if tokens[i] in ("GROUP", "ORDER") and i + 1 < len(tokens) and tokens[i + 1] == "BY":
            out.append(f"{tokens[i]} BY")
            i += 2
            continue
        out.append(tokens[i])
        i += 1
    return out
