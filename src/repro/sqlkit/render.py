"""Render an AST back to canonical Spider-style SQL text.

The renderer is the inverse of :mod:`repro.sqlkit.parser`:
``parse_sql(render_sql(q))`` round-trips structurally.  Output conventions
follow Spider's gold queries: upper-case keywords, ``AS`` for aliases,
single-quoted string literals.
"""

from __future__ import annotations

from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    Node,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    ValueList,
)


def render_sql(node: Node) -> str:
    """Render any AST node to SQL text."""
    return _render(node)


def _render(node: Node) -> str:
    renderer = _RENDERERS.get(type(node))
    if renderer is None:
        raise TypeError(f"cannot render node of type {type(node).__name__}")
    return renderer(node)


def _render_query(q: Query) -> str:
    parts = [_render_core(q.core)]
    for op, rhs in q.compounds:
        parts.append(op)
        parts.append(_render(rhs) if isinstance(rhs, Query) else _render_core(rhs))
    return " ".join(parts)


def _render_core(core: SelectCore) -> str:
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(i) for i in core.items))
    if core.from_clause is not None:
        parts.append("FROM")
        parts.append(_render_from(core.from_clause))
    if core.where is not None:
        parts.append("WHERE")
        parts.append(_render(core.where))
    if core.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(_render(g) for g in core.group_by))
    if core.having is not None:
        parts.append("HAVING")
        parts.append(_render(core.having))
    if core.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(o) for o in core.order_by))
    if core.limit is not None:
        parts.append(f"LIMIT {core.limit}")
    return " ".join(parts)


def _render_select_item(item: SelectItem) -> str:
    text = _render(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _render_order_item(item: OrderItem) -> str:
    text = _render(item.expr)
    if item.direction != "ASC":
        text += f" {item.direction}"
    return text


def _render_from(clause: FromClause) -> str:
    parts = [_render(clause.first)]
    for join in clause.joins:
        parts.append(join.kind)
        parts.append(_render(join.source))
        if join.on is not None:
            parts.append("ON")
            parts.append(_render(join.on))
    return " ".join(parts)


def _render_table_ref(ref: TableRef) -> str:
    return f"{ref.name} AS {ref.alias}" if ref.alias else ref.name


def _render_subquery_source(src: SubquerySource) -> str:
    inner = _render_query(src.query)
    return f"({inner}) AS {src.alias}" if src.alias else f"({inner})"


def _render_column_ref(ref: ColumnRef) -> str:
    return f"{ref.table}.{ref.column}" if ref.table else ref.column


def _render_star(star: Star) -> str:
    return f"{star.table}.*" if star.table else "*"


def _render_literal(lit: Literal) -> str:
    if lit.kind == "null" or lit.value is None:
        return "NULL"
    if lit.kind == "number":
        value = lit.value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    escaped = str(lit.value).replace("'", "''")
    return f"'{escaped}'"


def _render_agg(agg: Agg) -> str:
    inner = ", ".join(_render(a) for a in agg.args) if agg.args else "*"
    prefix = "DISTINCT " if agg.distinct else ""
    return f"{agg.func}({prefix}{inner})"


def _render_func_call(fn: FuncCall) -> str:
    inner = ", ".join(_render(a) for a in fn.args)
    return f"{fn.name}({inner})"


def _render_binary_op(op: BinaryOp) -> str:
    return f"{_render(op.left)} {op.op} {_render(op.right)}"


def _render_comparison(cmp: Comparison) -> str:
    return f"{_render(cmp.left)} {cmp.op} {_render(cmp.right)}"


def _render_in(expr: InExpr) -> str:
    kw = "NOT IN" if expr.negated else "IN"
    if isinstance(expr.source, Subquery):
        return f"{_render(expr.left)} {kw} ({_render_query(expr.source.query)})"
    return f"{_render(expr.left)} {kw} {_render(expr.source)}"


def _render_value_list(vl: ValueList) -> str:
    return "(" + ", ".join(_render(v) for v in vl.values) + ")"


def _render_like(expr: LikeExpr) -> str:
    kw = "NOT LIKE" if expr.negated else "LIKE"
    return f"{_render(expr.left)} {kw} {_render(expr.pattern)}"


def _render_between(expr: BetweenExpr) -> str:
    kw = "NOT BETWEEN" if expr.negated else "BETWEEN"
    return f"{_render(expr.left)} {kw} {_render(expr.low)} AND {_render(expr.high)}"


def _render_is_null(expr: IsNullExpr) -> str:
    kw = "IS NOT NULL" if expr.negated else "IS NULL"
    return f"{_render(expr.left)} {kw}"


def _render_bool_op(expr: BoolOp) -> str:
    rendered = []
    for term in expr.terms:
        text = _render(term)
        # Parenthesize nested OR inside AND to preserve precedence.
        if isinstance(term, BoolOp) and term.op != expr.op:
            text = f"({text})"
        rendered.append(text)
    return f" {expr.op} ".join(rendered)


def _render_subquery(sub: Subquery) -> str:
    return f"({_render_query(sub.query)})"


_RENDERERS = {
    Query: _render_query,
    SelectCore: _render_core,
    SelectItem: _render_select_item,
    OrderItem: _render_order_item,
    FromClause: _render_from,
    TableRef: _render_table_ref,
    SubquerySource: _render_subquery_source,
    ColumnRef: _render_column_ref,
    Star: _render_star,
    Literal: _render_literal,
    Agg: _render_agg,
    FuncCall: _render_func_call,
    BinaryOp: _render_binary_op,
    Comparison: _render_comparison,
    InExpr: _render_in,
    ValueList: _render_value_list,
    LikeExpr: _render_like,
    BetweenExpr: _render_between,
    IsNullExpr: _render_is_null,
    BoolOp: _render_bool_op,
    Subquery: _render_subquery,
}
