"""Render an AST back to SQL text, parameterized by target dialect.

The renderer is the inverse of :mod:`repro.sqlkit.parser`:
``parse_sql(render_sql(q))`` round-trips structurally.  Output conventions
follow Spider's gold queries: upper-case keywords, ``AS`` for aliases,
single-quoted string literals.

``render_sql(node)`` (the default ``sqlite`` dialect) is byte-identical
to the historical single-dialect renderer — the whole evaluation
pipeline depends on that stability.  Passing ``dialect="postgres"`` or
``"mysql"`` re-renders the same AST for another engine's legal surface:

* identifier quoting — words reserved in the target dialect are quoted
  in its style (``"order"`` on Postgres, ```rank``` on MySQL);
* row limiting — Postgres output uses the ANSI
  ``FETCH FIRST n ROWS ONLY`` form, SQLite/MySQL use ``LIMIT n``;
* string concatenation — ``a || b`` is lowered to ``CONCAT(a, b)`` on
  MySQL, where ``||`` means logical OR.

The per-dialect knobs live in :data:`_STYLES`; the capability matrix in
:mod:`repro.analysis.dialects` documents the same facts declaratively
for the static analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    Node,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    ValueList,
)
from repro.sqlkit.keywords import MYSQL_RESERVED, POSTGRES_RESERVED


@dataclass(frozen=True)
class _Style:
    """How one dialect spells the constructs that differ across engines."""

    name: str
    quote: str  # identifier quote character
    reserved: frozenset  # words that must be quoted when used as names
    limit_form: str  # "limit" | "fetch"
    concat_call: bool  # lower ``||`` to CONCAT(...)


_STYLES = {
    # The sqlite style quotes nothing: the historical renderer never
    # quoted identifiers and its output is frozen by the zero-drift gate.
    "sqlite": _Style(
        name="sqlite", quote='"', reserved=frozenset(),
        limit_form="limit", concat_call=False,
    ),
    "postgres": _Style(
        name="postgres", quote='"', reserved=POSTGRES_RESERVED,
        limit_form="fetch", concat_call=False,
    ),
    "mysql": _Style(
        name="mysql", quote="`", reserved=MYSQL_RESERVED,
        limit_form="limit", concat_call=True,
    ),
}

DIALECTS = tuple(sorted(_STYLES))


def render_sql(node: Node, dialect: str = "sqlite") -> str:
    """Render any AST node to SQL text for the given dialect."""
    style = _STYLES.get(dialect)
    if style is None:
        raise ValueError(f"unknown dialect {dialect!r}; "
                         f"expected one of {', '.join(DIALECTS)}")
    return _Renderer(style).render(node)


class _Renderer:
    """One rendering pass with a fixed dialect style."""

    def __init__(self, style: _Style):
        self.style = style

    def render(self, node: Node) -> str:
        renderer = _RENDERERS.get(type(node))
        if renderer is None:
            raise TypeError(
                f"cannot render node of type {type(node).__name__}"
            )
        return renderer(self, node)

    def _ident(self, name: str) -> str:
        """Quote ``name`` iff the target dialect reserves it."""
        if name.upper() in self.style.reserved:
            q = self.style.quote
            return f"{q}{name}{q}"
        return name

    def _render_query(self, q: Query) -> str:
        parts = [self._render_core(q.core)]
        for op, rhs in q.compounds:
            parts.append(op)
            parts.append(
                self.render(rhs) if isinstance(rhs, Query)
                else self._render_core(rhs)
            )
        return " ".join(parts)

    def _render_core(self, core: SelectCore) -> str:
        parts = ["SELECT"]
        if core.distinct:
            parts.append("DISTINCT")
        parts.append(
            ", ".join(self._render_select_item(i) for i in core.items)
        )
        if core.from_clause is not None:
            parts.append("FROM")
            parts.append(self._render_from(core.from_clause))
        if core.where is not None:
            parts.append("WHERE")
            parts.append(self.render(core.where))
        if core.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.render(g) for g in core.group_by))
        if core.having is not None:
            parts.append("HAVING")
            parts.append(self.render(core.having))
        if core.order_by:
            parts.append("ORDER BY")
            parts.append(
                ", ".join(self._render_order_item(o) for o in core.order_by)
            )
        if core.limit is not None:
            if self.style.limit_form == "fetch":
                parts.append(f"FETCH FIRST {core.limit} ROWS ONLY")
            else:
                parts.append(f"LIMIT {core.limit}")
        return " ".join(parts)

    def _render_select_item(self, item: SelectItem) -> str:
        text = self.render(item.expr)
        if item.alias:
            text += f" AS {self._ident(item.alias)}"
        return text

    def _render_order_item(self, item: OrderItem) -> str:
        text = self.render(item.expr)
        if item.direction != "ASC":
            text += f" {item.direction}"
        return text

    def _render_from(self, clause: FromClause) -> str:
        parts = [self.render(clause.first)]
        for join in clause.joins:
            parts.append(join.kind)
            parts.append(self.render(join.source))
            if join.on is not None:
                parts.append("ON")
                parts.append(self.render(join.on))
        return " ".join(parts)

    def _render_table_ref(self, ref: TableRef) -> str:
        name = self._ident(ref.name)
        return f"{name} AS {self._ident(ref.alias)}" if ref.alias else name

    def _render_subquery_source(self, src: SubquerySource) -> str:
        inner = self._render_query(src.query)
        if src.alias:
            return f"({inner}) AS {self._ident(src.alias)}"
        return f"({inner})"

    def _render_column_ref(self, ref: ColumnRef) -> str:
        column = self._ident(ref.column)
        return f"{self._ident(ref.table)}.{column}" if ref.table else column

    def _render_star(self, star: Star) -> str:
        return f"{self._ident(star.table)}.*" if star.table else "*"

    def _render_literal(self, lit: Literal) -> str:
        if lit.kind == "null" or lit.value is None:
            return "NULL"
        if lit.kind == "number":
            value = lit.value
            if isinstance(value, float) and value.is_integer():
                return str(int(value))
            return str(value)
        escaped = str(lit.value).replace("'", "''")
        return f"'{escaped}'"

    def _render_agg(self, agg: Agg) -> str:
        inner = (
            ", ".join(self.render(a) for a in agg.args) if agg.args else "*"
        )
        prefix = "DISTINCT " if agg.distinct else ""
        return f"{agg.func}({prefix}{inner})"

    def _render_func_call(self, fn: FuncCall) -> str:
        inner = ", ".join(self.render(a) for a in fn.args)
        return f"{fn.name}({inner})"

    def _render_binary_op(self, op: BinaryOp) -> str:
        if op.op == "||" and self.style.concat_call:
            # MySQL: ``||`` is logical OR; the portable spelling is
            # CONCAT.  Flatten chained concatenation into one call.
            return f"CONCAT({', '.join(self.render(t) for t in _concat_terms(op))})"
        return f"{self.render(op.left)} {op.op} {self.render(op.right)}"

    def _render_comparison(self, cmp: Comparison) -> str:
        return f"{self.render(cmp.left)} {cmp.op} {self.render(cmp.right)}"

    def _render_in(self, expr: InExpr) -> str:
        kw = "NOT IN" if expr.negated else "IN"
        if isinstance(expr.source, Subquery):
            return (
                f"{self.render(expr.left)} {kw} "
                f"({self._render_query(expr.source.query)})"
            )
        return f"{self.render(expr.left)} {kw} {self.render(expr.source)}"

    def _render_value_list(self, vl: ValueList) -> str:
        return "(" + ", ".join(self.render(v) for v in vl.values) + ")"

    def _render_like(self, expr: LikeExpr) -> str:
        kw = "NOT LIKE" if expr.negated else "LIKE"
        return f"{self.render(expr.left)} {kw} {self.render(expr.pattern)}"

    def _render_between(self, expr: BetweenExpr) -> str:
        kw = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{self.render(expr.left)} {kw} "
            f"{self.render(expr.low)} AND {self.render(expr.high)}"
        )

    def _render_is_null(self, expr: IsNullExpr) -> str:
        kw = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{self.render(expr.left)} {kw}"

    def _render_bool_op(self, expr: BoolOp) -> str:
        rendered = []
        for term in expr.terms:
            text = self.render(term)
            # Parenthesize nested OR inside AND to preserve precedence.
            if isinstance(term, BoolOp) and term.op != expr.op:
                text = f"({text})"
            rendered.append(text)
        return f" {expr.op} ".join(rendered)

    def _render_subquery(self, sub: Subquery) -> str:
        return f"({self._render_query(sub.query)})"


def _concat_terms(op: BinaryOp) -> list:
    """Flatten a left-nested ``a || b || c`` chain into [a, b, c]."""
    terms: list = []
    stack = [op]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "||":
            stack.append(node.right)
            stack.append(node.left)
        else:
            terms.append(node)
    return terms


_RENDERERS = {
    Query: _Renderer._render_query,
    SelectCore: _Renderer._render_core,
    SelectItem: _Renderer._render_select_item,
    OrderItem: _Renderer._render_order_item,
    FromClause: _Renderer._render_from,
    TableRef: _Renderer._render_table_ref,
    SubquerySource: _Renderer._render_subquery_source,
    ColumnRef: _Renderer._render_column_ref,
    Star: _Renderer._render_star,
    Literal: _Renderer._render_literal,
    Agg: _Renderer._render_agg,
    FuncCall: _Renderer._render_func_call,
    BinaryOp: _Renderer._render_binary_op,
    Comparison: _Renderer._render_comparison,
    InExpr: _Renderer._render_in,
    ValueList: _Renderer._render_value_list,
    LikeExpr: _Renderer._render_like,
    BetweenExpr: _Renderer._render_between,
    IsNullExpr: _Renderer._render_is_null,
    BoolOp: _Renderer._render_bool_op,
    Subquery: _Renderer._render_subquery,
}
