"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — build the synthetic benchmark corpus and save it to disk;
* ``evaluate``  — train an approach on a saved train split and score it on
  a saved dev split (EM/EX);
* ``translate`` — answer one NL question against a database of a saved
  dataset with a trained PURPLE pipeline;
* ``stats``     — print Table-3 style statistics for saved datasets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.spider import (
    Dataset,
    GeneratorConfig,
    benchmark_statistics,
    generate_benchmark,
    make_variant,
)


def _cmd_generate(args) -> int:
    config = GeneratorConfig(
        seed=args.seed,
        train_variants=args.train_variants,
        dev_variants=args.dev_variants,
        train_examples_per_db=args.train_per_db,
        dev_examples_per_db=args.dev_per_db,
    )
    print("Generating corpus ...")
    bench = generate_benchmark(config)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    bench.train.save(out / "train.json")
    bench.dev.save(out / "dev.json")
    for style in ("syn", "realistic", "dk"):
        make_variant(bench.dev, style).save(out / f"dev_{style}.json")
    print(f"Saved train ({len(bench.train)}) and dev ({len(bench.dev)}) "
          f"plus variants to {out}/")
    return 0


def _load(path: str) -> Dataset:
    return Dataset.load(path)


def _build_approach(name: str, llm_name: str, train: Dataset, budget: int,
                    consistency: int):
    from repro.baselines import (
        C3,
        DAILSQL,
        DINSQL,
        FewShotRandom,
        PLMSeq2SQL,
        ZeroShotSQL,
    )
    from repro.core import Purple, PurpleConfig
    from repro.llm import MockLLM, profile_by_name

    if name == "plm":
        return PLMSeq2SQL(train)
    llm = MockLLM(profile_by_name(llm_name))
    if name == "purple":
        config = PurpleConfig(input_budget=budget, consistency_n=consistency)
        return Purple(llm, config).fit(train)
    if name == "zero":
        return ZeroShotSQL(llm)
    if name == "few":
        return FewShotRandom(llm, train, budget=budget)
    if name == "c3":
        return C3(llm, consistency_n=consistency)
    if name == "din":
        return DINSQL(llm, train)
    if name == "dail":
        return DAILSQL(llm, train, budget=budget)
    raise SystemExit(f"unknown approach {name!r}")


def _cmd_evaluate(args) -> int:
    from repro.eval import evaluate_approach

    train = _load(args.train)
    dev = _load(args.dev)
    print(f"Training {args.approach} ({args.llm}) on {len(train)} demos ...")
    approach = _build_approach(
        args.approach, args.llm, train, args.budget, args.consistency
    )
    report = evaluate_approach(approach, dev, limit=args.limit)
    print(
        f"{approach.name}: EM {report.em:.1%}  EX {report.ex:.1%}  "
        f"tokens/query {report.tokens_per_query()}  (n={len(report)})"
    )
    if args.by_hardness:
        for metric in ("em", "ex"):
            print(f"  {metric.upper()} by hardness:", {
                k: f"{v:.1%}" for k, v in report.by_hardness(metric).items()
            })
    return 0


def _cmd_translate(args) -> int:
    from repro.eval import TranslationTask

    train = _load(args.train)
    dev = _load(args.dev)
    if args.db_id not in dev.databases:
        raise SystemExit(
            f"unknown db_id {args.db_id!r}; available: {dev.db_ids()}"
        )
    approach = _build_approach("purple", args.llm, train, args.budget,
                               args.consistency)
    result = approach.translate(
        TranslationTask(question=args.question, database=dev.database(args.db_id))
    )
    print(result.sql)
    return 0


def _cmd_stats(args) -> int:
    for path in args.datasets:
        stats = benchmark_statistics(_load(path))
        name, queries, dbs, qlen, slen = stats.row()
        print(f"{name}: {queries} queries, {dbs} dbs, "
              f"avg NL {qlen} chars, avg SQL {slen} chars")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PURPLE reproduction — corpus generation and evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate and save the corpus")
    g.add_argument("--output", default="corpus")
    g.add_argument("--seed", type=int, default=20240101)
    g.add_argument("--train-variants", type=int, default=4)
    g.add_argument("--dev-variants", type=int, default=2)
    g.add_argument("--train-per-db", type=int, default=45)
    g.add_argument("--dev-per-db", type=int, default=50)
    g.set_defaults(func=_cmd_generate)

    e = sub.add_parser("evaluate", help="train an approach and score it")
    e.add_argument("--train", default="corpus/train.json")
    e.add_argument("--dev", default="corpus/dev.json")
    e.add_argument(
        "--approach", default="purple",
        choices=["purple", "zero", "few", "c3", "din", "dail", "plm"],
    )
    e.add_argument("--llm", default="chatgpt", choices=["chatgpt", "gpt4"])
    e.add_argument("--budget", type=int, default=3072)
    e.add_argument("--consistency", type=int, default=30)
    e.add_argument("--limit", type=int, default=None)
    e.add_argument("--by-hardness", action="store_true")
    e.set_defaults(func=_cmd_evaluate)

    t = sub.add_parser("translate", help="translate one question with PURPLE")
    t.add_argument("question")
    t.add_argument("--db-id", required=True)
    t.add_argument("--train", default="corpus/train.json")
    t.add_argument("--dev", default="corpus/dev.json")
    t.add_argument("--llm", default="gpt4", choices=["chatgpt", "gpt4"])
    t.add_argument("--budget", type=int, default=3072)
    t.add_argument("--consistency", type=int, default=10)
    t.set_defaults(func=_cmd_translate)

    s = sub.add_parser("stats", help="Table-3 statistics for saved datasets")
    s.add_argument("datasets", nargs="+")
    s.set_defaults(func=_cmd_stats)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
