"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — build the synthetic benchmark corpus and save it to disk;
* ``evaluate``  — train an approach on a saved train split and score it on
  a saved dev split (EM/EX), optionally tracing the run (``--trace-out``)
  and streaming structured events (``--log-level``);
* ``translate`` — answer one NL question against a database of a saved
  dataset with a trained PURPLE pipeline;
* ``report``    — render a saved JSONL trace as a per-stage / per-hardness
  profile with a text flame summary;
* ``stats``     — print Table-3 style statistics for saved datasets;
* ``index``     — manage the persistent demonstration store
  (``index build`` precomputes it offline, ``index verify`` exits 1 on a
  corrupt or mismatched store, ``index info`` prints the manifest);
* ``lint``      — run the registered source-convention rules over a Python
  tree (exit 1 on findings);
* ``analyze``   — run the schema-aware SQL semantic analyzer on one query
  (exit 1 on errors, 2 on warnings only);
* ``serve``     — run the long-lived multi-tenant NL2SQL HTTP service
  (``repro.serve``) speaking the versioned wire contract of
  :mod:`repro.api.types` (see ``docs/serving.md``);
* ``top``       — live one-screen dashboard (qps, p50/p95/p99, tenants,
  SLO burn, rungs) over a running server's ``/v1/metrics`` and
  ``/v1/status`` (see ``docs/observability.md``).

All human-facing output goes through :mod:`repro.obs.render`, the CLI's
single rendering boundary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs import render
from repro.spider import (
    Dataset,
    GeneratorConfig,
    benchmark_statistics,
    generate_benchmark,
    make_variant,
)


def _cmd_generate(args) -> int:
    config = GeneratorConfig(
        seed=args.seed,
        train_variants=args.train_variants,
        dev_variants=args.dev_variants,
        train_examples_per_db=args.train_per_db,
        dev_examples_per_db=args.dev_per_db,
    )
    render.out("Generating corpus ...")
    bench = generate_benchmark(config)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    bench.train.save(out / "train.json")
    bench.dev.save(out / "dev.json")
    for style in ("syn", "realistic", "dk"):
        make_variant(bench.dev, style).save(out / f"dev_{style}.json")
    render.out(f"Saved train ({len(bench.train)}) and dev ({len(bench.dev)}) "
               f"plus variants to {out}/")
    return 0


def _load(path: str) -> Dataset:
    return Dataset.load(path)


def _make_llm(llm_name: str, cache_dir=None):
    """The provider stack (see :func:`repro.api.runtime.make_llm`)."""
    from repro.api.runtime import make_llm

    return make_llm(llm_name, cache_dir=cache_dir)


def _build_approach(name: str, llm, train: Dataset, budget: int,
                    consistency: int, store=None, offline_index=False,
                    repair_rounds=0, repair_token_budget=None,
                    dialect="sqlite", retrieval="off"):
    """Registry construction with CLI error rendering.

    The assembly itself lives in :func:`repro.api.runtime.build_approach`
    (shared with ``repro serve``); this boundary converts its typed
    errors into the exits a terminal user expects.
    """
    from repro import api
    from repro.api.runtime import RuntimeConfigError, build_approach
    from repro.schema import exception_text
    from repro.store import StoreError

    try:
        return build_approach(
            name, llm, train, budget, consistency,
            store=store, offline_index=offline_index,
            repair_rounds=repair_rounds,
            repair_token_budget=repair_token_budget,
            dialect=dialect, retrieval=retrieval,
        )
    except (RuntimeConfigError, api.UnknownApproachError) as exc:
        raise SystemExit(exception_text(exc))
    except StoreError as exc:
        # Strict offline mode refused a missing/stale store.
        raise SystemExit(f"demonstration store: {exc}")


def _make_observer(args):
    """The run observer implied by ``--trace-out`` / ``--log-level``."""
    from repro.api.runtime import make_observer

    return make_observer(
        log_level=args.log_level,
        trace=args.trace_out is not None,
        sink=render.stderr_sink,
    )


def _cmd_evaluate(args) -> int:
    from repro.eval import (
        diagnostics_summary,
        evaluate_approach,
        performance_summary,
    )
    from contextlib import nullcontext

    from repro.api.runtime import export_trace

    train = _load(args.train)
    dev = _load(args.dev)
    render.out(
        f"Training {args.approach} ({args.llm}) on {len(train)} demos ..."
    )
    observer = _make_observer(args)
    # Scope construction under the observer too, so index build/load
    # spans and metrics from fit land in the trace.
    with observer.activate() if observer is not None else nullcontext():
        llm = _make_llm(args.llm, cache_dir=args.cache_dir)
        approach = _build_approach(
            args.approach, llm, train, args.budget, args.consistency,
            store=args.store, offline_index=args.offline_index,
            repair_rounds=args.repair_rounds,
            repair_token_budget=args.repair_token_budget,
            dialect=args.dialect, retrieval=args.retrieval,
        )
    report = evaluate_approach(
        approach, dev, limit=args.limit, workers=args.workers,
        observer=observer, static_guard=args.static_guard,
        dialect=args.dialect,
    )
    render.out(
        f"{approach.name}: EM {report.em:.1%}  EX {report.ex:.1%}  "
        f"tokens/query {report.tokens_per_query()}  (n={len(report)})"
    )
    perf = performance_summary(report)
    if perf:
        render.out(
            f"  workers {perf['workers']}  wall {perf['wall_time_s']}s  "
            f"throughput {perf['throughput_qps']} q/s  "
            f"p50 {perf['latency_p50_s']}s  p95 {perf['latency_p95_s']}s"
        )
    if args.cache_dir is not None:
        info = llm.stats()
        render.out(
            f"  prompt cache: {info.hits} hits / "
            f"{info.hits + info.misses} lookups "
            f"(hit rate {info.hit_rate:.1%})"
        )
    if report.telemetry is not None:
        t = report.telemetry
        render.out(
            f"  telemetry: cache hit rate {t.cache_hit_rate:.1%}  "
            f"retries {t.llm_retries}  breaker opens {t.breaker_opens}  "
            f"degraded {t.degraded}  events {t.events}"
        )
        if t.repair_triggered:
            render.out(
                f"  repair: {t.repair_recovered} of {t.repair_triggered} "
                f"failing answers recovered in {t.repair_rounds} rounds"
                + (f"  abandoned {t.repair_abandoned}"
                   if t.repair_abandoned else "")
            )
        diags = diagnostics_summary(report)
        if diags:
            render.out(
                f"  static guard: {diags['guard_skipped']} of "
                f"{diags['guard_checked']} executions avoided "
                f"({diags['executions_avoided_rate']:.1%})",
                diags["rules"],
            )
    if args.by_hardness:
        for metric in ("em", "ex"):
            render.out(f"  {metric.upper()} by hardness:", {
                k: f"{v:.1%}" for k, v in report.by_hardness(metric).items()
            })
    if observer is not None and args.trace_out is not None:
        lines = export_trace(
            observer,
            args.trace_out,
            meta={
                "approach": approach.name,
                "dataset": dev.name,
                "tasks": len(report),
                "workers": args.workers,
            },
        )
        render.out(f"  trace: {lines} lines -> {args.trace_out}")
    return 0


def _cmd_translate(args) -> int:
    from repro import api
    from repro.api.types import TranslateRequest

    train = _load(args.train)
    dev = _load(args.dev)
    if args.db_id not in dev.databases:
        raise SystemExit(
            f"unknown db_id {args.db_id!r}; available: {dev.db_ids()}"
        )
    approach = _build_approach("purple", _make_llm(args.llm), train,
                               args.budget, args.consistency,
                               store=args.store,
                               offline_index=args.offline_index,
                               repair_rounds=args.repair_rounds,
                               repair_token_budget=args.repair_token_budget,
                               retrieval=args.retrieval)
    # The same wire request the HTTP service speaks (repro.api.types).
    request = TranslateRequest(question=args.question, db_id=args.db_id)
    response = api.translate(
        approach, request, database=dev.database(args.db_id)
    )
    render.out(response.sql)
    return 0


def _parse_tenant_specs(args) -> list:
    """``--tenant NAME=TRAIN:DEV`` specs, defaulting to one tenant."""
    if not args.tenant:
        return [("default", args.train, args.dev)]
    specs = []
    for spec in args.tenant:
        name, _, paths = spec.partition("=")
        train_path, _, dev_path = paths.partition(":")
        if not name or not train_path or not dev_path:
            raise SystemExit(f"--tenant expects NAME=TRAIN:DEV, got {spec!r}")
        specs.append((name, train_path, dev_path))
    return specs


def _cmd_serve(args) -> int:
    from contextlib import nullcontext

    from repro.api.runtime import make_live, make_observer
    from repro.serve import (
        AdmissionController,
        AdmissionPolicy,
        NL2SQLService,
        ReproServer,
        Tenant,
        TenantRegistry,
    )

    # The service always collects metrics — /v1/metrics is an endpoint,
    # not an opt-in — so the observer exists even when nothing streams.
    observer = make_observer(
        log_level=args.log_level, trace=True, sink=render.stderr_sink
    )
    registry = TenantRegistry()
    with observer.activate() if observer is not None else nullcontext():
        for name, train_path, dev_path in _parse_tenant_specs(args):
            train = _load(train_path)
            data = _load(dev_path)
            render.out(
                f"tenant {name}: training {args.approach} ({args.llm}) "
                f"on {len(train)} demos, serving {len(data.databases)} dbs"
            )
            translator = _build_approach(
                args.approach, _make_llm(args.llm), train,
                args.budget, args.consistency,
                store=args.store, offline_index=args.offline_index,
            )
            registry.add(Tenant(
                tenant_id=name, data=data, translator=translator,
                store_path=args.store,
            ))
    try:
        policy = AdmissionPolicy(
            rate=args.rate, burst=args.burst,
            shed_inflight=args.shed_inflight, max_inflight=args.max_inflight,
        )
    except ValueError as exc:
        from repro.schema import exception_text

        raise SystemExit(exception_text(exc))
    # Continuous telemetry rides on the service observer; a long-lived
    # process prunes captured lanes so span memory stays bounded.
    live = make_live(
        observer,
        window_s=args.window,
        trace_capacity=args.trace_capacity,
        slow_ms=args.slow_ms,
        availability=args.slo_availability,
        latency_target_ms=args.slo_latency_ms,
        prune_lanes=True,
    )
    service = NL2SQLService(
        registry, AdmissionController(policy), observer=observer, live=live
    )
    if args.check:
        render.out(
            f"serve check ok: {len(registry)} tenant(s) "
            f"({', '.join(registry.ids())})"
        )
        service.close()
        return 0
    server = ReproServer(service, host=args.host, port=args.port)
    host, port = server.address
    render.out(f"serving {len(registry)} tenant(s) on http://{host}:{port}")
    try:
        # Serve on the CLI's own thread; ctrl-C stops cleanly.
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    render.out("server stopped")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import run_top

    return run_top(args.url, interval=args.interval, once=args.once)


def _cmd_report(args) -> int:
    import json

    from repro.obs import chrome_trace, read_trace, render_report

    trace = read_trace(args.trace)
    render.out(render_report(trace))
    if args.chrome is not None:
        Path(args.chrome).write_text(json.dumps(chrome_trace(trace)))
        render.out(f"\nchrome trace -> {args.chrome}")
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import PACKAGE_ROOT, LintEngine

    root = Path(args.root) if args.root is not None else PACKAGE_ROOT
    diagnostics = LintEngine(root).run()
    if args.format == "json":
        render.out(json.dumps(
            {
                "root": str(root),
                "findings": [d.as_dict() for d in diagnostics],
            },
            indent=2,
        ))
    else:
        for diagnostic in diagnostics:
            render.out(diagnostic.render())
        render.out(
            f"{len(diagnostics)} finding(s) in {root}"
            if diagnostics else f"clean: {root}"
        )
    return 1 if diagnostics else 0


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis import analyze_dialect

    dataset = _load(args.dataset)
    if args.db not in dataset.databases:
        raise SystemExit(
            f"unknown db_id {args.db!r}; available: {dataset.db_ids()}"
        )
    diagnostics = analyze_dialect(
        args.sql, dataset.database(args.db).schema, args.dialect
    )
    if args.format == "json":
        render.out(json.dumps(
            {
                "sql": args.sql,
                "db_id": args.db,
                "dialect": args.dialect,
                "diagnostics": [d.as_dict() for d in diagnostics],
            },
            indent=2,
        ))
    else:
        for diagnostic in diagnostics:
            render.out(diagnostic.render())
        if not diagnostics:
            render.out("clean")
    if any(d.severity == "error" for d in diagnostics):
        return 1
    return 2 if diagnostics else 0


def _cmd_index_build(args) -> int:
    from repro.store import DemoStore

    train = _load(args.train)
    render.out(f"Indexing {len(train)} demonstrations ...")
    questions = (
        [ex.question for ex in train] if args.with_embeddings else None
    )
    store = DemoStore.build([ex.sql for ex in train], questions=questions)
    path = store.save(args.out)
    size = path.stat().st_size
    states = ":".join(
        str(v) for _, v in sorted(store.manifest.state_counts.items())
    )
    render.out(
        f"Built store {path} ({size} bytes): {store.manifest.pool_size} "
        f"demos, end states {states}, pool hash "
        f"{store.manifest.pool_hash[:12]}…"
    )
    if store.retrieval is not None:
        render.out(
            f"Embedded {len(store.retrieval)} demos "
            f"(dim {store.retrieval.dim}, probes {store.retrieval.probes})"
        )
    return 0


def _cmd_index_verify(args) -> int:
    from repro.store import DemoStore, StoreError

    try:
        store = DemoStore.load(args.store)
    except StoreError as exc:
        render.out(f"FAIL {args.store}: {exc}")
        return 1
    problems = store.self_check(deep=args.deep)
    if args.train is not None:
        train = _load(args.train)
        # Only stores that carry an embedding section are held to the
        # questions hash — a plain store verified with questions on
        # hand is not stale for lacking one.
        questions = (
            [ex.question for ex in train]
            if store.retrieval is not None
            else None
        )
        problems.extend(
            store.verify_against(
                [ex.sql for ex in train], questions=questions
            )
        )
    if problems:
        for problem in problems:
            render.out(f"FAIL {args.store}: {problem}")
        return 1
    render.out(
        f"ok: {args.store} ({store.manifest.pool_size} demos, "
        f"pool hash {store.manifest.pool_hash[:12]}…)"
    )
    return 0


def _cmd_index_info(args) -> int:
    import json

    from repro.store import StoreError, read_manifest

    try:
        manifest = read_manifest(args.store)
    except StoreError as exc:
        render.out(f"FAIL {args.store}: {exc}")
        return 1
    render.out(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_stats(args) -> int:
    for path in args.datasets:
        stats = benchmark_statistics(_load(path))
        name, queries, dbs, qlen, slen = stats.row()
        render.out(f"{name}: {queries} queries, {dbs} dbs, "
                   f"avg NL {qlen} chars, avg SQL {slen} chars")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PURPLE reproduction — corpus generation and evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate and save the corpus")
    g.add_argument("--output", default="corpus")
    g.add_argument("--seed", type=int, default=20240101)
    g.add_argument("--train-variants", type=int, default=4)
    g.add_argument("--dev-variants", type=int, default=2)
    g.add_argument("--train-per-db", type=int, default=45)
    g.add_argument("--dev-per-db", type=int, default=50)
    g.set_defaults(func=_cmd_generate)

    from repro.api import available

    e = sub.add_parser("evaluate", help="train an approach and score it")
    e.add_argument("--train", default="corpus/train.json")
    e.add_argument("--dev", default="corpus/dev.json")
    e.add_argument(
        "--approach", default="purple", choices=list(available()),
    )
    e.add_argument("--llm", default="chatgpt", choices=["chatgpt", "gpt4"])
    e.add_argument("--budget", type=int, default=3072)
    e.add_argument("--consistency", type=int, default=30)
    e.add_argument("--limit", type=int, default=None)
    e.add_argument(
        "--workers", type=int, default=1,
        help="evaluation thread-pool size (results are identical "
             "for any value)",
    )
    e.add_argument(
        "--cache-dir", default=None,
        help="persist the prompt cache here; a re-run served from a "
             "warm cache skips the provider entirely",
    )
    e.add_argument(
        "--trace-out", default=None,
        help="trace the run (spans, events, metrics) into this JSONL "
             "file; inspect it with `repro report`",
    )
    e.add_argument(
        "--log-level", default="off",
        choices=["debug", "info", "warning", "error", "off"],
        help="stream structured events at or above this level to stderr",
    )
    e.add_argument(
        "--store", default=None,
        help="warm-start the demonstration index from this store file "
             "(purple only; built on first use, reused while fresh)",
    )
    e.add_argument(
        "--offline-index", action="store_true",
        help="strict mode: error out instead of rebuilding when --store "
             "is missing or stale",
    )
    e.add_argument(
        "--retrieval", default="off",
        choices=["off", "prefilter", "fused"],
        help="embedding retrieval tier (purple only; docs/retrieval.md): "
             "off is byte-identical to a build without the tier, "
             "prefilter caps the automaton candidate set for selection "
             "speed, fused additionally re-ranks by similarity x rank",
    )
    e.add_argument(
        "--repair-rounds", type=int, default=0,
        help="per-task cap on execution-feedback repair rounds for "
             "failing answers (purple only; 0 disables the loop and is "
             "byte-identical to a loop-free build)",
    )
    e.add_argument(
        "--repair-token-budget", type=int, default=None,
        help="run-wide cap on extra tokens the repair loop may spend "
             "(default: unlimited)",
    )
    e.add_argument("--by-hardness", action="store_true")
    e.add_argument(
        "--static-guard", action="store_true",
        help="skip executing predictions the static analyzer proves "
             "fatal (scores are byte-identical either way)",
    )
    e.add_argument(
        "--dialect", default="sqlite", choices=["sqlite", "postgres"],
        help="execution axis: sqlite (real backend) or postgres "
             "(simulated profile; guard, errors, and repair speak "
             "Postgres — see docs/dialects.md)",
    )
    e.set_defaults(func=_cmd_evaluate)

    t = sub.add_parser("translate", help="translate one question with PURPLE")
    t.add_argument("question")
    t.add_argument("--db-id", required=True)
    t.add_argument("--train", default="corpus/train.json")
    t.add_argument("--dev", default="corpus/dev.json")
    t.add_argument("--llm", default="gpt4", choices=["chatgpt", "gpt4"])
    t.add_argument("--budget", type=int, default=3072)
    t.add_argument("--consistency", type=int, default=10)
    t.add_argument(
        "--store", default=None,
        help="warm-start the demonstration index from this store file",
    )
    t.add_argument(
        "--offline-index", action="store_true",
        help="strict mode: error out instead of rebuilding a stale store",
    )
    t.add_argument(
        "--retrieval", default="off",
        choices=["off", "prefilter", "fused"],
        help="embedding retrieval tier (docs/retrieval.md): off is "
             "byte-identical to a build without the tier",
    )
    t.add_argument(
        "--repair-rounds", type=int, default=0,
        help="per-task cap on execution-feedback repair rounds",
    )
    t.add_argument(
        "--repair-token-budget", type=int, default=None,
        help="run-wide cap on extra tokens the repair loop may spend",
    )
    t.set_defaults(func=_cmd_translate)

    sv = sub.add_parser(
        "serve", help="run the multi-tenant NL2SQL HTTP service"
    )
    sv.add_argument("--train", default="corpus/train.json")
    sv.add_argument("--dev", default="corpus/dev.json")
    sv.add_argument(
        "--tenant", action="append", default=None, metavar="NAME=TRAIN:DEV",
        help="host a tenant from its own train/dev datasets (repeatable; "
             "overrides --train/--dev)",
    )
    sv.add_argument(
        "--approach", default="purple", choices=list(available()),
    )
    sv.add_argument("--llm", default="gpt4", choices=["chatgpt", "gpt4"])
    sv.add_argument("--budget", type=int, default=3072)
    sv.add_argument("--consistency", type=int, default=10)
    sv.add_argument(
        "--store", default=None,
        help="warm-start the demonstration index from this store file "
             "(purple only)",
    )
    sv.add_argument(
        "--offline-index", action="store_true",
        help="strict mode: error out instead of rebuilding a stale store",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=8763,
        help="0 binds an ephemeral port",
    )
    sv.add_argument(
        "--rate", type=float, default=50.0,
        help="per-tenant sustained requests/second before shedding",
    )
    sv.add_argument(
        "--burst", type=int, default=25,
        help="per-tenant burst allowance above --rate",
    )
    sv.add_argument(
        "--shed-inflight", type=int, default=16,
        help="soft cap: above this many concurrent requests, serve "
             "demoted down the degradation ladder",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=64,
        help="hard cap: above this, refuse with 429",
    )
    sv.add_argument(
        "--log-level", default="off",
        choices=["debug", "info", "warning", "error", "off"],
        help="stream structured events at or above this level to stderr",
    )
    sv.add_argument(
        "--window", type=float, default=60.0,
        help="trailing window (seconds) for /v1/metrics live rates and "
             "latency quantiles",
    )
    sv.add_argument(
        "--trace-capacity", type=int, default=256,
        help="retained request traces in the live trace store",
    )
    sv.add_argument(
        "--slow-ms", type=float, default=1000.0,
        help="latency (ms) above which a request's trace is always "
             "retained by tail sampling",
    )
    sv.add_argument(
        "--slo-availability", type=float, default=0.999,
        help="availability SLO target tracked at /v1/status",
    )
    sv.add_argument(
        "--slo-latency-ms", type=float, default=2000.0,
        help="latency SLO threshold (ms) tracked at /v1/status",
    )
    sv.add_argument(
        "--check", action="store_true",
        help="build every tenant, print a summary, and exit without "
             "binding the socket",
    )
    sv.set_defaults(func=_cmd_serve)

    tp = sub.add_parser(
        "top", help="live dashboard over a running server's telemetry"
    )
    tp.add_argument(
        "--url", default="http://127.0.0.1:8763",
        help="base URL of a running repro serve instance",
    )
    tp.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between dashboard refreshes",
    )
    tp.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    tp.set_defaults(func=_cmd_top)

    r = sub.add_parser("report", help="render a saved JSONL run trace")
    r.add_argument("trace", help="trace file written by evaluate --trace-out")
    r.add_argument(
        "--chrome", default=None,
        help="also convert to Chrome trace_event JSON at this path "
             "(open in chrome://tracing or Perfetto)",
    )
    r.set_defaults(func=_cmd_report)

    s = sub.add_parser("stats", help="Table-3 statistics for saved datasets")
    s.add_argument("datasets", nargs="+")
    s.set_defaults(func=_cmd_stats)

    ix = sub.add_parser(
        "index", help="manage the persistent demonstration store"
    )
    ix_sub = ix.add_subparsers(dest="index_command", required=True)

    ib = ix_sub.add_parser(
        "build", help="precompute the demonstration store offline"
    )
    ib.add_argument("--train", default="corpus/train.json")
    ib.add_argument("--out", default="corpus/train.demostore")
    ib.add_argument(
        "--with-embeddings", action="store_true",
        help="also build and persist the embedding index over the "
             "pool's questions + skeletons, enabling `evaluate "
             "--retrieval prefilter|fused` to warm-start from this "
             "store (docs/retrieval.md)",
    )
    ib.set_defaults(func=_cmd_index_build)

    iv = ix_sub.add_parser(
        "verify",
        help="check a store's integrity/freshness (exit 1 on any problem)",
    )
    iv.add_argument("--store", required=True)
    iv.add_argument(
        "--train", default=None,
        help="also verify the store matches this saved demonstration pool",
    )
    iv.add_argument(
        "--deep", action="store_true",
        help="re-parse every embedded SQL and compare against the stored "
             "skeletons (catches skeletonizer drift)",
    )
    iv.set_defaults(func=_cmd_index_verify)

    ii = ix_sub.add_parser("info", help="print a store's manifest as JSON")
    ii.add_argument("--store", required=True)
    ii.set_defaults(func=_cmd_index_info)

    li = sub.add_parser(
        "lint", help="run the source-convention rules over a Python tree"
    )
    li.add_argument(
        "--root", default=None,
        help="tree to lint (default: the installed repro package)",
    )
    li.add_argument("--format", default="text", choices=["text", "json"])
    li.set_defaults(func=_cmd_lint)

    a = sub.add_parser(
        "analyze", help="statically analyze one SQL query against a schema"
    )
    a.add_argument("sql", help="the SQL text to analyze")
    a.add_argument("--db", required=True, help="database id in the dataset")
    a.add_argument("--dataset", default="corpus/dev.json")
    a.add_argument(
        "--dialect", default="sqlite",
        choices=["sqlite", "postgres", "mysql"],
        help="target dialect for portability findings (dlct.* rules; "
             "default sqlite checks the native surface only)",
    )
    a.add_argument("--format", default="text", choices=["text", "json"])
    a.set_defaults(func=_cmd_analyze)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly with the
        # conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
