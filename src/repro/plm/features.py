"""Feature engineering for the PLM substrates.

``schema_item_features`` featurizes a (question, schema item) pair for the
relevance classifier; ``question_cues`` extracts the operator-composition
cue indicators that condition the skeleton sequence model.
"""

from __future__ import annotations

import re

import numpy as np

from repro.schema import Database, Schema
from repro.utils.text import singularize, split_words

SCHEMA_FEATURE_DIM = 12

# Cue indicators, in order.  Each is (name, regex) over the lowercase
# question; the skeleton model conditions on this binary vector.
CUE_PATTERNS = (
    ("how_many", r"\bhow many\b"),
    ("count_the", r"\bcount\b"),
    ("different", r"\bdifferent\b|\bdistinct\b|\bunique\b"),
    ("average", r"\baverage\b"),
    ("maximum", r"\bmaximum\b"),
    ("minimum", r"\bminimum\b"),
    ("total", r"\btotal\b"),
    ("at_least", r"\bat least\b"),
    ("at_most", r"\bat most\b"),
    ("greater", r"\bgreater than\b|\bmore than\b|\babove\b|\bexceed"),
    ("less", r"\bless than\b|\bbelow\b|\bunder\b"),
    ("between", r"\bbetween\b"),
    ("contains", r"\bcontain|\bstarts with\b|\bends with\b|\brelated to\b"),
    ("not_equal", r"\bis not\b|\bnot with\b"),
    ("negation", r"\bdo not\b|\bdoes not\b|\bdon't\b|\bnever\b|\bwithout\b|\bno\b"),
    ("highest", r"\bhighest\b|\blargest\b|\bbiggest\b"),
    ("lowest", r"\blowest\b|\bsmallest\b"),
    ("most", r"\bthe most\b"),
    ("fewest", r"\bthe fewest\b|\bthe least\b"),
    ("sorted", r"\bsort|\border\b|\bascending\b|\bdescending\b"),
    ("descending", r"\bdescending\b"),
    ("for_each", r"\bfor each\b|\bof each\b|\bper\b|\beach\b"),
    ("number_of", r"\bnumber of\b"),
    ("both", r"\bboth\b"),
    ("either_or", r"\bor\b"),
    ("and_filter", r"\band\b"),
    ("average_compare", r"\babove the average\b|\bbelow the average\b"),
    ("top_k", r"\bthe \d+ \b"),
    ("who", r"\bwho\b"),
    ("among", r"\bamong\b"),
    ("quoted_value", r"'[^']+'"),
    ("numeric_value", r"\b\d+\b"),
    ("of_their", r"\bits\b|\btheir\b"),
    # Annotation-convention phrasings (each correlates with a realization).
    ("no_at_all", r"\bhave no\b.*\bat all\b"),
    ("is_the_extreme", r"\bis the maximum\b|\bis the minimum\b"),
    ("as_well_as", r"\bas well as\b"),
    ("either", r"\beither\b"),
    ("belonging_to", r"\bbelonging to\b"),
    ("more_than_n", r"\bmore than \d+\b"),
    ("at_least_n", r"\bat least \d+\b"),
    ("greatest_number", r"\bgreatest number\b"),
    ("count_of_distinct", r"\bcount of distinct\b"),
    ("count_the_each", r"^count the\b"),
)

CUE_DIM = len(CUE_PATTERNS)

# Cues that signal an annotation convention (each correlates with one SQL
# realization).  The simulated LLM compares these between the task question
# and each demonstration's question — attending to a same-phrasing
# demonstration is how in-context learning picks the right variant even
# when it is not the first demonstration in the prompt.
CONVENTION_CUES = frozenset(
    {
        "no_at_all",
        "negation",
        "is_the_extreme",
        "highest",
        "lowest",
        "as_well_as",
        "both",
        "either",
        "belonging_to",
        "more_than_n",
        "at_least_n",
        "greatest_number",
        "most",
        "count_of_distinct",
        "count_the_each",
        "different",
        "between",
    }
)


def convention_cues(question: str) -> frozenset:
    """The convention-signalling cues firing in a question."""
    return frozenset(cue_names(question) & CONVENTION_CUES)

_CUE_REGEX = [(name, re.compile(pattern)) for name, pattern in CUE_PATTERNS]


def question_cues(question: str) -> np.ndarray:
    """Binary cue-indicator vector for a question."""
    text = question.lower()
    return np.array(
        [1.0 if regex.search(text) else 0.0 for _, regex in _CUE_REGEX],
        dtype=float,
    )


def cue_names(question: str) -> set:
    """Names of the cues firing in a question (used in tests/diagnostics)."""
    text = question.lower()
    return {name for name, regex in _CUE_REGEX if regex.search(text)}


def schema_item_features(
    question: str,
    schema: Schema,
    item_table: str,
    item_column: str = "",
    database: Database = None,
) -> np.ndarray:
    """Featurize a (question, schema item) pair.

    ``item_column`` empty means the item is the table itself.  Features
    capture lexical overlap between the question and the item's natural
    name, value mentions, and structural hints (primary/foreign key).
    """
    q_words = split_words(question)
    q_set = {singularize(w) for w in q_words}
    q_text = " " + " ".join(singularize(w) for w in q_words) + " "

    table = schema.table(item_table)
    if item_column:
        natural = table.column(item_column).natural_name
    else:
        natural = table.natural_name
    item_words = [singularize(w) for w in split_words(natural)]
    item_phrase = " " + " ".join(item_words) + " "

    overlap = sum(1 for w in item_words if w in q_set)
    full_phrase = 1.0 if item_phrase in q_text else 0.0
    coverage = overlap / len(item_words) if item_words else 0.0

    # Character-trigram similarity (catches partial morphology).
    char_sim = _trigram_similarity("".join(item_words), "".join(sorted(q_set)))

    value_hit = 0.0
    if item_column and database is not None:
        value_hit = _value_mentioned(question, database, item_table, item_column)

    is_pk = 0.0
    is_fk = 0.0
    table_mentioned = 0.0
    if item_column:
        is_pk = 1.0 if (table.primary_key or "").lower() == item_column.lower() else 0.0
        for fk in schema.foreign_keys:
            src_t, src_c, dst_t, dst_c = fk.normalized()
            if (src_t, src_c) == (item_table.lower(), item_column.lower()):
                is_fk = 1.0
            if (dst_t, dst_c) == (item_table.lower(), item_column.lower()):
                is_fk = 1.0
        t_words = [singularize(w) for w in split_words(table.natural_name)]
        table_mentioned = (
            sum(1 for w in t_words if w in q_set) / len(t_words) if t_words else 0.0
        )

    n_tables, n_columns = schema.size()
    return np.array(
        [
            1.0,  # bias
            float(overlap),
            coverage,
            full_phrase,
            char_sim,
            value_hit,
            is_pk,
            is_fk,
            table_mentioned,
            1.0 if item_column else 0.0,  # item is a column
            min(n_tables, 10) / 10.0,
            min(n_columns, 50) / 50.0,
        ],
        dtype=float,
    )


def _trigram_similarity(a: str, b: str) -> float:
    ta = {a[i : i + 3] for i in range(max(0, len(a) - 2))}
    tb = {b[i : i + 3] for i in range(max(0, len(b) - 2))}
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta)


def _value_mentioned(
    question: str, database: Database, table: str, column: str
) -> float:
    text = question.lower()
    values = database.column_values(table, column, limit=50)
    for value in values:
        if isinstance(value, str) and len(value) >= 3 and value.lower() in text:
            return 1.0
        if isinstance(value, (int, float)) and re.search(
            rf"\b{re.escape(str(value))}\b", text
        ):
            return 1.0
    return 0.0
