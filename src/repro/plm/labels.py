"""Extract which schema items a gold SQL uses — classifier training labels.

§IV-A1: "For each input pair (X, D), the labels are extracted from the SQL
Y to identify the presence (absence) of each table or column."
"""

from __future__ import annotations

from repro.schema import Schema
from repro.sqlkit.ast_nodes import (
    ColumnRef,
    FromClause,
    Query,
    SubquerySource,
    TableRef,
    walk,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql


def used_schema_items(sql: str, schema: Schema) -> tuple:
    """Return ``(used_tables, used_columns)`` for a SQL string.

    ``used_tables`` is a set of table keys; ``used_columns`` a set of
    ``(table_key, column_key)``.  Aliases are resolved scope by scope.
    """
    try:
        query = parse_sql(sql)
    except SQLError:
        return set(), set()
    tables: set = set()
    columns: set = set()
    _collect(query, schema, tables, columns, outer_aliases={})
    return tables, columns


def _collect(query: Query, schema: Schema, tables: set, columns: set,
             outer_aliases: dict) -> None:
    for core in query.all_cores():
        aliases = dict(outer_aliases)
        scope_tables = []
        if core.from_clause is not None:
            for source in core.from_clause.sources():
                if isinstance(source, TableRef):
                    name = source.name.lower()
                    if schema.has_table(name):
                        tables.add(name)
                        scope_tables.append(name)
                        aliases[name] = name
                        if source.alias:
                            aliases[source.alias.lower()] = name
                elif isinstance(source, SubquerySource):
                    _collect(source.query, schema, tables, columns, aliases)
        sole = scope_tables[0] if len(scope_tables) == 1 else None
        for node in _walk_scope(core):
            if isinstance(node, ColumnRef):
                _record_column(node, schema, aliases, sole, columns)
            elif isinstance(node, Query):
                # A nested subquery opens its own scope.
                _collect(node, schema, tables, columns, aliases)


def _walk_scope(core):
    """Yield nodes of one SELECT scope; nested Query nodes are yielded but
    not descended into (their scope is handled recursively)."""
    stack = list(core.children())
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (Query, SubquerySource)):
            continue
        stack.extend(node.children())


def _record_column(ref: ColumnRef, schema: Schema, aliases: dict, sole,
                   columns: set) -> None:
    column = ref.column.lower()
    if ref.table:
        table = aliases.get(ref.table.lower())
        if table and schema.has_table(table) and schema.table(table).has_column(column):
            columns.add((table, column))
        return
    if sole is not None and schema.has_table(sole):
        if schema.table(sole).has_column(column):
            columns.add((sole, column))
        return
    # Unqualified in a multi-table scope: attribute to any table having it.
    for table in schema.tables:
        if table.has_column(column):
            columns.add((table.key, column))
            return
