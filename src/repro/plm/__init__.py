"""Trainable PLM substrates.

The paper fine-tunes two pre-trained models: a RESDSQL-style cross-encoder
that scores schema items against the question (used by schema pruning) and
a T5-3B skeleton generator decoded with beam search (used by skeleton
prediction).  Neither checkpoint is available offline, so this package
implements both as from-scratch trainable models over engineered features:
a focal-loss logistic-regression classifier and a feature-conditioned
softmax sequence model.  They expose exactly the interfaces the pipeline
needs — per-item relevance probabilities and top-k skeletons with
probabilities — including the realistic failure modes (synonymy and
implicit mentions lower confidence).
"""

from repro.plm.classifier import SchemaItemClassifier, train_schema_classifier
from repro.plm.features import question_cues, schema_item_features
from repro.plm.labels import used_schema_items
from repro.plm.skeleton_model import SkeletonPredictor, train_skeleton_predictor

__all__ = [
    "SchemaItemClassifier",
    "train_schema_classifier",
    "question_cues",
    "schema_item_features",
    "used_schema_items",
    "SkeletonPredictor",
    "train_skeleton_predictor",
]
