"""The schema-item relevance classifier (RESDSQL-style, §IV-A1).

A logistic-regression model over :func:`schema_item_features`, trained
with *focal loss* (the paper follows RESDSQL in using it, because relevant
items are a small minority of all schema items).  Pure numpy batch
gradient descent — small data, seconds to train, fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plm.features import SCHEMA_FEATURE_DIM, schema_item_features
from repro.plm.labels import used_schema_items
from repro.schema import Database, Schema
from repro.spider.dataset import Dataset
from repro.utils.rng import derive_rng


@dataclass
class SchemaItemClassifier:
    """Binary relevance classifier for schema items."""

    weights: np.ndarray = field(
        default_factory=lambda: np.zeros(SCHEMA_FEATURE_DIM)
    )
    gamma: float = 2.0  # focal-loss focusing parameter
    alpha: float = 0.5  # focal-loss class balance

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Sigmoid scores for a (n, d) feature matrix or a single vector."""
        features = np.atleast_2d(features)
        z = features @ self.weights
        return 1.0 / (1.0 + np.exp(-z))

    def score_item(
        self,
        question: str,
        schema: Schema,
        table: str,
        column: str = "",
        database: Database = None,
    ) -> float:
        """Relevance probability for one schema item."""
        vector = schema_item_features(question, schema, table, column, database)
        return float(self.predict_proba(vector)[0])

    def score_schema(
        self, question: str, schema: Schema, database: Database = None
    ) -> tuple:
        """Probabilities for every item: ``(table_probs, column_probs)``.

        ``table_probs``: {table_key: p}; ``column_probs``:
        {(table_key, column_key): p}.
        """
        table_probs = {}
        column_probs = {}
        for tbl in schema.tables:
            table_probs[tbl.key] = self.score_item(
                question, schema, tbl.key, "", database
            )
            for col in tbl.columns:
                column_probs[(tbl.key, col.key)] = self.score_item(
                    question, schema, tbl.key, col.key, database
                )
        return table_probs, column_probs

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 300,
        lr: float = 0.5,
        l2: float = 1e-4,
    ) -> "SchemaItemClassifier":
        """Batch gradient descent on the focal loss."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        weights = np.zeros(X.shape[1])
        n = len(y)
        g, a = self.gamma, self.alpha
        for _ in range(epochs):
            p = 1.0 / (1.0 + np.exp(-(X @ weights)))
            p = np.clip(p, 1e-7, 1 - 1e-7)
            # FL(y=1) = -a (1-p)^g log p ;  FL(y=0) = -(1-a) p^g log(1-p).
            # With p = sigmoid(z):
            #   dFL/dz (y=1) = a (1-p)^g (g p log p - (1-p))
            #   dFL/dz (y=0) = (1-a) p^g (p - g (1-p) log(1-p))
            dz_pos = a * (1 - p) ** g * (g * p * np.log(p) - (1 - p))
            dz_neg = (1 - a) * p**g * (p - g * (1 - p) * np.log(1 - p))
            dz = y * dz_pos + (1 - y) * dz_neg
            grad = (X.T @ dz) / n + l2 * weights
            weights -= lr * grad
        self.weights = weights
        return self


def build_training_matrix(dataset: Dataset) -> tuple:
    """Assemble (X, y) over all (example, schema item) pairs of a dataset."""
    rows = []
    labels = []
    for ex in dataset:
        database = dataset.database(ex.db_id)
        schema = database.schema
        used_tables, used_columns = used_schema_items(ex.sql, schema)
        for tbl in schema.tables:
            rows.append(
                schema_item_features(ex.question, schema, tbl.key, "", database)
            )
            labels.append(1.0 if tbl.key in used_tables else 0.0)
            for col in tbl.columns:
                rows.append(
                    schema_item_features(
                        ex.question, schema, tbl.key, col.key, database
                    )
                )
                labels.append(
                    1.0 if (tbl.key, col.key) in used_columns else 0.0
                )
    return np.array(rows), np.array(labels)


def train_schema_classifier(
    dataset: Dataset, epochs: int = 300, seed: int = 0
) -> SchemaItemClassifier:
    """Train the relevance classifier on a dataset's gold annotations."""
    X, y = build_training_matrix(dataset)
    rng = derive_rng(seed, "classifier")
    order = rng.permutation(len(y))
    classifier = SchemaItemClassifier()
    classifier.fit(X[order], y[order], epochs=epochs)
    return classifier
