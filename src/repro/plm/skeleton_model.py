"""The skeleton predictor (§IV-B) — a trainable conditional sequence model.

Stands in for the paper's fine-tuned T5-3B: a softmax-regression token
model conditioned on (previous two skeleton tokens, question cue
indicators, schema-size features), trained on the demonstration corpus's
gold skeletons and decoded with a genuine beam search that returns the
top-k skeletons with their sequence probabilities — exactly the interface
(and the error modes) PURPLE's demonstration selection consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.plm.features import CUE_DIM, question_cues
from repro.plm.labels import used_schema_items
from repro.schema import Schema
from repro.spider.dataset import Dataset
from repro.sqlkit.skeleton import skeleton_tokens
from repro.utils.rng import derive_rng

BOS = "<s>"
EOS = "</s>"

_MAX_LEN = 60


@dataclass
class SkeletonPredictor:
    """Feature-conditioned softmax sequence model over skeleton tokens.

    Decoding is constrained by a prefix trie over the training skeletons
    (in the spirit of PICARD's constrained decoding): at each step, only
    tokens that continue some known skeleton are allowed and the step
    distribution renormalizes over them.  This gives the model the
    fine-tuned-PLM property the paper relies on — it emits syntactically
    valid compositions, but cannot recall a composition absent from its
    training corpus (the recall gap the four-level abstraction of §IV-C
    is designed to absorb).
    """

    vocab: list = field(default_factory=list)
    weights: Optional[np.ndarray] = None  # (V, D)
    trie: Optional[dict] = None  # tuple(prefix) -> set of allowed next tokens
    # N-best reranker: a multinomial classifier over whole training
    # skeletons re-scores the beam's candidates (the fine-tuned model's
    # sequence-level discrimination; cf. the N-best reranking line of work
    # the paper cites [53]).
    class_skeletons: list = field(default_factory=list)
    class_weights: Optional[np.ndarray] = None  # (C, CUE_DIM + 1)

    def __post_init__(self) -> None:
        self._index = {tok: i for i, tok in enumerate(self.vocab)}
        self._class_index = {s: i for i, s in enumerate(self.class_skeletons)}

    # -- feature layout -------------------------------------------------------

    @property
    def dim(self) -> int:
        """Feature-vector dimensionality."""
        v = len(self.vocab)
        return 2 * v + CUE_DIM + 3  # prev, prev2, cues, bias, pos, n_tables

    def _step_features(
        self,
        prev: str,
        prev2: str,
        cues: np.ndarray,
        position: int,
        n_tables: float,
    ) -> np.ndarray:
        v = len(self.vocab)
        x = np.zeros(self.dim, dtype=np.float32)
        prev_idx = self._index.get(prev, 0)
        x[prev_idx] = 1.0
        x[v + self._index.get(prev2, 0)] = 1.0
        x[2 * v : 2 * v + CUE_DIM] = cues
        x[2 * v + CUE_DIM] = 1.0  # bias
        x[2 * v + CUE_DIM + 1] = min(position, 40) / 40.0
        x[2 * v + CUE_DIM + 2] = min(n_tables, 4) / 4.0
        return x

    # -- inference -------------------------------------------------------------

    def token_distribution(self, x: np.ndarray) -> np.ndarray:
        """Softmax next-token distribution for features x."""
        logits = self.weights @ x
        logits -= logits.max()
        p = np.exp(logits)
        return p / p.sum()

    def predict(
        self,
        question: str,
        schema: Optional[Schema] = None,
        k: int = 3,
        beam_width: Optional[int] = None,
    ) -> list:
        """Top-k skeletons via beam search: ``[(skeleton_string, prob)]``.

        ``beam_width`` defaults to ``max(2 * k, 6)``; sequence probability
        is the product of step probabilities (§IV-B).
        """
        assert self.weights is not None, "predictor is not trained"
        cues = question_cues(question)
        n_tables = float(len(schema.tables)) if schema is not None else 2.0
        width = beam_width or max(2 * k, 6)

        beams = [((BOS, BOS), [], 0.0)]  # (context, tokens, logprob)
        finished = []
        for position in range(_MAX_LEN):
            candidates = []
            for (prev, prev2), tokens, logprob in beams:
                x = self._step_features(prev, prev2, cues, position, n_tables)
                dist = self.token_distribution(x)
                allowed = self._allowed_next(tokens)
                if allowed is not None:
                    mask = np.zeros_like(dist)
                    for token in allowed:
                        idx = self._index.get(token)
                        if idx is not None:
                            mask[idx] = 1.0
                    dist = dist * mask
                    total = dist.sum()
                    if total <= 0:
                        continue
                    dist = dist / total
                top = np.argsort(-dist)[: width + 2]
                for ti in top:
                    if dist[int(ti)] <= 0:
                        break
                    token = self.vocab[int(ti)]
                    if token == BOS:
                        continue
                    new_logprob = logprob + float(np.log(dist[int(ti)] + 1e-12))
                    if token == EOS:
                        if tokens:
                            finished.append((tokens, new_logprob))
                        continue
                    candidates.append(
                        ((token, prev), tokens + [token], new_logprob)
                    )
            if not candidates:
                break
            candidates.sort(key=lambda c: -c[2])
            beams = candidates[:width]
            # Stop only when no live beam can still beat the k-th finished
            # hypothesis (log-probabilities only decrease with length).
            target = max(3 * k, 8)
            if len(finished) >= target:
                kth_best = sorted((lp for _, lp in finished), reverse=True)[
                    target - 1
                ]
                if beams[0][2] <= kth_best:
                    break
        finished.sort(key=lambda f: -f[1])
        candidates = []
        seen = set()
        for tokens, logprob in finished:
            text = " ".join(tokens)
            if text in seen:
                continue
            seen.add(text)
            candidates.append((text, logprob))
            if len(candidates) >= max(3 * k, 8):
                break
        candidates = self._rerank(candidates, cues)
        return [(text, float(np.exp(lp))) for text, lp in candidates[:k]]

    def _rerank(self, candidates: list, cues: np.ndarray) -> list:
        """Blend beam log-probabilities with the sequence classifier's."""
        if self.class_weights is None or not candidates:
            return candidates
        x = np.concatenate([cues, [1.0]])
        logits = self.class_weights @ x
        logits -= logits.max()
        log_z = float(np.log(np.exp(logits).sum()))
        rescored = []
        for text, beam_lp in candidates:
            idx = self._class_index.get(text)
            class_lp = float(logits[idx]) - log_z if idx is not None else -20.0
            rescored.append((text, beam_lp + 0.3 * class_lp))
        rescored.sort(key=lambda c: -c[1])
        return rescored

    def _allowed_next(self, tokens: list) -> Optional[set]:
        """Tokens that continue some training skeleton (None = unconstrained)."""
        if self.trie is None:
            return None
        return self.trie.get(tuple(tokens), set())

    # -- training ---------------------------------------------------------------

    def fit(
        self,
        sequences: list,
        epochs: int = 12,
        lr: float = 0.4,
        batch_size: int = 256,
        seed: int = 0,
    ) -> "SkeletonPredictor":
        """Train on ``[(tokens, cue_vector, n_tables)]`` sequences.

        Features are assembled lazily per minibatch — the interaction
        block makes the full design matrix too large to hold at once.
        """
        steps = self._assemble_steps(sequences)
        rng = derive_rng(seed, "skeleton_model")
        v = len(self.vocab)
        weights = np.zeros((v, self.dim), dtype=np.float32)
        n = len(steps)
        for epoch in range(epochs):
            step_lr = lr
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb = np.stack(
                    [
                        self._step_features(*steps[int(i)][:-1])
                        for i in idx
                    ]
                )
                yb = np.array([steps[int(i)][-1] for i in idx])
                logits = xb @ weights.T
                logits -= logits.max(axis=1, keepdims=True)
                p = np.exp(logits)
                p /= p.sum(axis=1, keepdims=True)
                p[np.arange(len(idx)), yb] -= 1.0
                grad = p.T @ xb / len(idx)
                weights -= step_lr * grad
        self.weights = weights
        return self

    def fit_reranker(
        self,
        sequences: list,
        epochs: int = 400,
        lr: float = 1.0,
        seed: int = 0,
    ) -> "SkeletonPredictor":
        """Train the sequence-level classifier on (cues → skeleton)."""
        class_list = sorted({" ".join(tokens) for tokens, _, _ in sequences})
        self.class_skeletons = class_list
        self._class_index = {s: i for i, s in enumerate(class_list)}
        X = np.stack(
            [np.concatenate([cues, [1.0]]) for _, cues, _ in sequences]
        ).astype(np.float32)
        y = np.array(
            [self._class_index[" ".join(tokens)] for tokens, _, _ in sequences]
        )
        c, d = len(class_list), X.shape[1]
        weights = np.zeros((c, d), dtype=np.float32)
        n = len(y)
        for epoch in range(epochs):
            logits = X @ weights.T
            logits -= logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            p /= p.sum(axis=1, keepdims=True)
            p[np.arange(n), y] -= 1.0
            grad = p.T @ X / n
            weights -= lr / (1.0 + 0.01 * epoch) * grad
        self.class_weights = weights
        return self

    def _assemble_steps(self, sequences: list) -> list:
        """(prev, prev2, cues, position, n_tables, target_index) per step."""
        steps = []
        for tokens, cues, n_tables in sequences:
            seq = list(tokens) + [EOS]
            prev, prev2 = BOS, BOS
            for position, token in enumerate(seq):
                steps.append(
                    (prev, prev2, cues, position, n_tables, self._index[token])
                )
                prev2, prev = prev, token
        return steps


def train_skeleton_predictor(
    dataset: Dataset, epochs: int = 12, seed: int = 0, rerank: bool = False
) -> SkeletonPredictor:
    """Build vocabulary and train the predictor on a dataset's skeletons.

    The schema-size feature uses the number of *gold-used* tables, matching
    the pruned schemas the model sees at inference time.
    """
    sequences = []
    vocab_set = set()
    trie: dict = {}
    for ex in dataset:
        tokens = skeleton_tokens(ex.sql)
        vocab_set.update(tokens)
        cues = question_cues(ex.question)
        used_tables, _ = used_schema_items(
            ex.sql, dataset.database(ex.db_id).schema
        )
        sequences.append((tokens, cues, float(max(len(used_tables), 1))))
        for i in range(len(tokens)):
            trie.setdefault(tuple(tokens[:i]), set()).add(tokens[i])
        trie.setdefault(tuple(tokens), set()).add(EOS)
    vocab = [BOS, EOS] + sorted(vocab_set)
    predictor = SkeletonPredictor(vocab=vocab, trie=trie)
    predictor.fit(sequences, epochs=epochs, seed=seed)
    if rerank:
        predictor.fit_reranker(sequences, seed=seed)
    return predictor
