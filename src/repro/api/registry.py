"""The approach registry behind :mod:`repro.api`.

Factories register under a short name ("purple", "dail", …) and are
constructed uniformly through :func:`create`::

    @register("myapproach")
    def _make(*, llm=None, train=None, **config):
        ...

Every factory takes keyword-only arguments and accepts at least ``llm``
(a provider, ignored by LLM-free approaches) and ``train`` (a
demonstration :class:`~repro.spider.dataset.Dataset`, or None to defer
``fit``).  Further keywords are approach-specific configuration; unknown
ones raise ``TypeError`` from the factory itself.

This module keeps zero imports from the approach packages — they import
*us* to self-register — and loads the built-in approaches lazily on the
first :func:`create`/:func:`available` call, so importing
``repro.api.registry`` from deep inside ``repro.core`` can never cycle.
"""

from __future__ import annotations

import threading
from importlib import import_module
from typing import Callable, Optional

#: Modules whose import registers the built-in approaches.
_BUILTIN_MODULES = ("repro.core.pipeline", "repro.baselines")

_lock = threading.Lock()
_factories: dict[str, Callable] = {}
_capabilities: dict[str, tuple] = {}
_builtins_loaded = False

#: What every registered approach can do without declaring anything:
#: ``fit``/``translate`` are the protocol, and ``health`` has a default
#: implementation in :func:`repro.api.health`.
DEFAULT_CAPABILITIES = ("fit", "health", "translate")


class UnknownApproachError(KeyError):
    """No approach is registered under the requested name."""


def register(name: str, factory: Optional[Callable] = None,
             capabilities: Optional[tuple] = None):
    """Register ``factory`` under ``name``; usable as a decorator.

    ``capabilities`` declares optional surfaces beyond the defaults —
    ``"explain"`` (the approach implements ``explain(task, sql=...)``)
    and ``"demote"`` (``translate`` accepts ``min_rung`` so the serving
    layer can shed load down its degradation ladder).  The serving
    layer consults these flags to answer 501 cleanly on unsupported
    endpoints rather than failing mid-request.

    Re-registering a name is an error unless it is the same factory
    (idempotent re-imports are fine).
    """
    declared = tuple(sorted(set(DEFAULT_CAPABILITIES) | set(capabilities or ())))

    def _add(factory: Callable) -> Callable:
        with _lock:
            existing = _factories.get(name)
            if existing is not None and existing is not factory:
                raise ValueError(f"approach {name!r} is already registered")
            _factories[name] = factory
            _capabilities[name] = declared
        return factory

    if factory is None:
        return _add
    return _add(factory)


def create(name: str, **kwargs):
    """Construct the approach registered under ``name``.

    Keyword arguments go to the factory unchanged; the shared ones are
    ``llm`` and ``train``.  Raises :class:`UnknownApproachError` for an
    unregistered name.
    """
    _ensure_builtins()
    with _lock:
        factory = _factories.get(name)
    if factory is None:
        raise UnknownApproachError(
            f"unknown approach {name!r}; available: {', '.join(available())}"
        )
    return factory(**kwargs)


def available(detail: bool = False):
    """The registered approach names, sorted.

    With ``detail=True``, returns ``{name: capabilities}`` instead —
    each value the sorted tuple of capability flags declared at
    registration (always a superset of :data:`DEFAULT_CAPABILITIES`) —
    so callers like the serving layer can advertise or gate per-approach
    surfaces without constructing anything.
    """
    _ensure_builtins()
    with _lock:
        if detail:
            return {
                name: _capabilities.get(name, DEFAULT_CAPABILITIES)
                for name in sorted(_factories)
            }
        return tuple(sorted(_factories))


def _ensure_builtins() -> None:
    """Import the modules that register the built-in approaches."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        import_module(module)
    _builtins_loaded = True
