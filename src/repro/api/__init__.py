"""``repro.api`` — the one stable surface for constructing approaches.

Everything that translates NL to SQL behind the harness — PURPLE, every
baseline, and any user-defined approach — implements the
:class:`Translator` protocol and is constructed by name through the
registry::

    from repro import api

    purple = api.create("purple", llm=MockLLM(GPT4), train=bench.train)
    api.available()          # ('c3', 'dail', 'din', 'few', 'plm', 'purple', 'zero')

    @api.register("my-approach")
    def _make(*, llm=None, train=None, **config):
        return MyApproach(llm, **config)

``create`` passes ``llm`` (the provider; LLM-free approaches ignore it),
``train`` (fit immediately when given), and approach-specific
configuration keywords through to the registered factory.  The CLI, the
benchmark suite, and the examples all construct approaches exclusively
through this module, which is enforced by a lint test.

``__all__`` below is the single public export list; anything outside it
is an implementation detail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.api.registry import UnknownApproachError, available, create, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.harness import TranslationResult, TranslationTask
    from repro.spider.dataset import Dataset

__all__ = [
    "Translator",
    "UnknownApproachError",
    "available",
    "create",
    "register",
]


@runtime_checkable
class Translator(Protocol):
    """The protocol every registered approach satisfies.

    A superset of the harness's minimal ``NL2SQLApproach`` (which only
    needs ``translate``): translators are also *trainable* — ``fit``
    prepares the approach from a demonstration pool and returns ``self``
    so construction chains.  Approaches with nothing to train implement
    ``fit`` as a no-op.
    """

    name: str

    def fit(self, demo_pool: "Dataset") -> "Translator":
        """Prepare the approach from the demonstration pool."""
        ...

    def translate(self, task: "TranslationTask") -> "TranslationResult":
        """Translate one NL question to SQL."""
        ...
