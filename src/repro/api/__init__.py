"""``repro.api`` — the one stable surface for constructing approaches.

Everything that translates NL to SQL behind the harness — PURPLE, every
baseline, and any user-defined approach — implements the
:class:`Translator` protocol and is constructed by name through the
registry::

    from repro import api

    purple = api.create("purple", llm=MockLLM(GPT4), train=bench.train)
    api.available()          # ('c3', 'dail', 'din', 'few', 'plm', 'purple', 'zero')
    api.available(detail=True)["purple"]   # (..., 'demote', 'explain', ...)

    @api.register("my-approach")
    def _make(*, llm=None, train=None, **config):
        return MyApproach(llm, **config)

``create`` passes ``llm`` (the provider; LLM-free approaches ignore it),
``train`` (fit immediately when given), and approach-specific
configuration keywords through to the registered factory.  The CLI, the
benchmark suite, and the examples all construct approaches exclusively
through this module, which is enforced by a lint test.

Beyond construction, this module hosts the *capability* surface the
serving layer (:mod:`repro.serve`) runs on:

* :mod:`repro.api.types` — the versioned wire contract
  (:class:`~repro.api.types.TranslateRequest` and friends), spoken
  identically by the HTTP handlers, :func:`translate` below, and the
  ``repro translate`` CLI command;
* :func:`translate` — run one wire request through any translator;
* :func:`explain` / :func:`health` — optional capabilities with default
  implementations, so every translator answers ``health()`` and
  approaches without ``explain`` fail typed
  (:class:`CapabilityError`) instead of with ``AttributeError``;
* :func:`capabilities` — the flags for one live instance (the registry's
  ``available(detail=True)`` reports them per *name*).

``__all__`` below is the single public export list; anything outside it
is an implementation detail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.api.registry import UnknownApproachError, available, create, register
from repro.api.types import (
    TranslateRequest,
    TranslateResponse,
    response_from_result,
    task_from_request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.harness import TranslationResult, TranslationTask
    from repro.spider.dataset import Dataset

__all__ = [
    "Translator",
    "UnknownApproachError",
    "available",
    "create",
    "register",
    "CapabilityError",
    "capabilities",
    "explain",
    "health",
    "translate",
]


@runtime_checkable
class Translator(Protocol):
    """The protocol every registered approach satisfies.

    A superset of the harness's minimal ``NL2SQLApproach`` (which only
    needs ``translate``): translators are also *trainable* — ``fit``
    prepares the approach from a demonstration pool and returns ``self``
    so construction chains.  Approaches with nothing to train implement
    ``fit`` as a no-op.

    Two further capabilities are *optional* (deliberately outside this
    runtime-checked protocol so legacy approaches still satisfy it) and
    reached through the module-level dispatchers, which provide the
    default implementations:

    * ``explain(task, sql=None) -> dict`` — static diagnostics plus
      retrieval provenance; dispatch via :func:`explain`, declared with
      the ``"explain"`` capability flag at registration;
    * ``health() -> dict`` — liveness/fitness self-report; dispatch via
      :func:`health`, which synthesizes one for approaches without it.
    """

    name: str

    def fit(self, demo_pool: "Dataset") -> "Translator":
        """Prepare the approach from the demonstration pool."""
        ...

    def translate(self, task: "TranslationTask") -> "TranslationResult":
        """Translate one NL question to SQL."""
        ...


class CapabilityError(NotImplementedError):
    """The translator does not implement the requested capability."""


def capabilities(translator) -> tuple:
    """The capability flags of one live translator instance.

    Always includes ``fit``/``translate``/``health`` (the protocol plus
    the default ``health`` below); adds ``explain`` when the instance
    implements it and ``demote`` when its ``translate`` accepts a
    ``min_rung`` entry point for load shedding.
    """
    flags = {"fit", "health", "translate"}
    if callable(getattr(translator, "explain", None)):
        flags.add("explain")
    if getattr(translator, "max_demotion", 0) > 0:
        flags.add("demote")
    return tuple(sorted(flags))


def health(translator) -> dict:
    """The translator's health self-report.

    Dispatches to the instance's own ``health()`` when present; the
    default implementation reports the name and capability flags, which
    is enough for a liveness endpoint.
    """
    own = getattr(translator, "health", None)
    if callable(own):
        return own()
    return {
        "status": "ok",
        "approach": getattr(translator, "name", type(translator).__name__),
        "capabilities": list(capabilities(translator)),
    }


def explain(translator, task, sql: Optional[str] = None) -> dict:
    """Static diagnostics and retrieval provenance for one task.

    Only translators declaring the ``explain`` capability implement
    this; the default is a typed :class:`CapabilityError` so transport
    layers can answer 501 instead of crashing the request thread.
    """
    own = getattr(translator, "explain", None)
    if not callable(own):
        raise CapabilityError(
            f"{getattr(translator, 'name', type(translator).__name__)} "
            "does not support explain"
        )
    return own(task, sql=sql)


def translate(translator, request, *, database,
              min_rung: int = 0) -> TranslateResponse:
    """Run one wire-level :class:`~repro.api.types.TranslateRequest`.

    The single entry point behind the HTTP ``/v1/translate`` handler and
    the ``repro translate`` CLI command: converts the wire request to an
    engine task against the resolved ``database``, runs the translator
    (entering its degradation ladder at ``min_rung`` when the instance
    supports demotion), and flattens the result back onto the wire.

    Passing a legacy :class:`~repro.eval.harness.TranslationTask` as
    ``request`` still works through the :mod:`repro.api.compat` shim,
    with a :class:`DeprecationWarning`.
    """
    from repro.api.compat import coerce_request

    request = coerce_request(request)
    task = task_from_request(request, database)
    demotion = min(min_rung, getattr(translator, "max_demotion", 0))
    if demotion > 0:
        result = translator.translate(task, min_rung=demotion)
    else:
        result = translator.translate(task)
    return response_from_result(request, result, shed=min_rung > 0)
