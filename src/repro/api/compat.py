"""Deprecation shims for the pre-registry constructor signatures.

The approach constructors are keyword-only past the provider argument
(so the registry can construct them uniformly), but a generation of
callers passed ``demo_pool`` and friends positionally.
:func:`absorb_positional` maps such legacy positional arguments onto the
new keyword-only parameters, emitting a :class:`DeprecationWarning` so
the old call sites keep working while announcing their retirement.
"""

from __future__ import annotations

import warnings


def absorb_positional(cls_name: str, args: tuple, pairs: tuple) -> tuple:
    """Overlay legacy positional ``args`` onto keyword-only parameters.

    ``pairs`` is ``((name, current_value), ...)`` in the legacy
    positional order; the returned tuple carries the final values in the
    same order.  A positional argument overrides the keyword default; a
    caller passing both positional and keyword for one parameter gets
    the positional value (the legacy call could not have done that at
    all, so no working call changes meaning).
    """
    if not args:
        return tuple(value for _, value in pairs)
    if len(args) > len(pairs):
        raise TypeError(
            f"{cls_name}() takes at most {len(pairs)} positional "
            f"configuration arguments ({len(args)} given)"
        )
    names = ", ".join(name for name, _ in pairs[: len(args)])
    warnings.warn(
        f"passing {names} to {cls_name}() positionally is deprecated; "
        "use keyword arguments (or repro.api.create)",
        DeprecationWarning,
        stacklevel=3,
    )
    values = list(args) + [value for _, value in pairs[len(args):]]
    return tuple(values)
