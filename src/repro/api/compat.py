"""Deprecation shims bridging legacy call shapes onto the current API.

Two generations of compatibility live here:

* :func:`absorb_positional` — the approach constructors are keyword-only
  past the provider argument (so the registry can construct them
  uniformly), but a generation of callers passed ``demo_pool`` and
  friends positionally; this maps such legacy positional arguments onto
  the new keyword-only parameters.
* :func:`coerce_request` / :func:`result_from_response` — the wire
  contract (:mod:`repro.api.types`) replaced raw
  :class:`~repro.eval.harness.TranslationTask` /
  :class:`~repro.eval.harness.TranslationResult` objects at every
  process boundary; call sites still holding the engine types keep
  working through these converters.

Every shim emits a :class:`DeprecationWarning` so the old call sites
keep working while announcing their retirement.  The engine types
themselves are *not* deprecated inside the pipeline — only their use on
the wire surface is.
"""

from __future__ import annotations

import warnings


def absorb_positional(cls_name: str, args: tuple, pairs: tuple) -> tuple:
    """Overlay legacy positional ``args`` onto keyword-only parameters.

    ``pairs`` is ``((name, current_value), ...)`` in the legacy
    positional order; the returned tuple carries the final values in the
    same order.  A positional argument overrides the keyword default; a
    caller passing both positional and keyword for one parameter gets
    the positional value (the legacy call could not have done that at
    all, so no working call changes meaning).
    """
    if not args:
        return tuple(value for _, value in pairs)
    if len(args) > len(pairs):
        raise TypeError(
            f"{cls_name}() takes at most {len(pairs)} positional "
            f"configuration arguments ({len(args)} given)"
        )
    names = ", ".join(name for name, _ in pairs[: len(args)])
    warnings.warn(
        f"passing {names} to {cls_name}() positionally is deprecated; "
        "use keyword arguments (or repro.api.create)",
        DeprecationWarning,
        stacklevel=3,
    )
    values = list(args) + [value for _, value in pairs[len(args):]]
    return tuple(values)


def coerce_request(request):
    """Accept either wire type or legacy engine task on the new surface.

    :class:`~repro.api.types.TranslateRequest` passes through untouched.
    A legacy :class:`~repro.eval.harness.TranslationTask` is converted —
    question and ``db_id`` carry over; tenant and request id take their
    defaults — with a :class:`DeprecationWarning`, so pre-wire call
    sites of :func:`repro.api.translate` keep working.
    """
    from repro.api.types import TranslateRequest

    if isinstance(request, TranslateRequest):
        return request
    question = getattr(request, "question", None)
    db_id = getattr(request, "db_id", None)
    if question is None or db_id is None:
        raise TypeError(
            "expected a TranslateRequest (or a legacy TranslationTask); "
            f"got {type(request).__name__}"
        )
    warnings.warn(
        "passing a TranslationTask to repro.api.translate is deprecated; "
        "build a repro.api.types.TranslateRequest instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return TranslateRequest(question=question, db_id=db_id)


def result_from_response(response):
    """Convert a wire response back to the legacy engine result type.

    For callers that still unpack :class:`~repro.eval.harness.TranslationResult`
    fields; the usage record and resilience counters carry over.  Emits
    a :class:`DeprecationWarning` — new code should read the
    :class:`~repro.api.types.TranslateResponse` directly.
    """
    from repro.eval.cost import TokenUsage
    from repro.eval.harness import TranslationResult

    warnings.warn(
        "converting TranslateResponse back to TranslationResult is "
        "deprecated; read the wire response directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return TranslationResult(
        sql=response.sql,
        usage=TokenUsage(
            prompt_tokens=response.prompt_tokens,
            output_tokens=response.output_tokens,
            calls=1 if (response.prompt_tokens or response.output_tokens) else 0,
        ),
        degradation_level=response.degradation_level,
        retries=response.retries,
        best_effort=response.best_effort,
        repair_rounds=response.repair_rounds,
        repaired=response.repaired,
    )
