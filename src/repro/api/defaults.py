"""Shared constructor defaults for every approach.

One place for the knobs several approaches share, so the registry can
construct any of them uniformly and the CLI's defaults cannot drift from
the library's.  Paper-anchored values: the 3072-token prompt budget is
§V-A4's setting, and the consistency numbers follow the per-approach
choices in §V.
"""

from __future__ import annotations

#: Input prompt token budget (PURPLE §V-A4; DAIL-SQL and few-shot too).
DEFAULT_BUDGET = 3072

#: Self-consistency sample counts per approach family.
DEFAULT_CONSISTENCY_N = 20
DEFAULT_DAIL_CONSISTENCY_N = 5

#: Example values rendered per schema column in prompts.
DEFAULT_VALUES_PER_COLUMN = 2

#: Seed for approach-local randomness (demo shuffling, PLM training).
DEFAULT_SEED = 0

#: Skeleton candidates the PLM pipeline considers.
DEFAULT_TOP_K = 3
