"""The versioned wire contract shared by the server, facade, and CLI.

Every surface that moves a translation across a process boundary — the
``repro.serve`` HTTP handlers, the :func:`repro.api.translate` facade,
and the ``repro translate`` CLI command — speaks these frozen dataclasses
and nothing else.  Each type carries a ``schema_version`` field and
round-trips through ``to_json``/``from_json``; unknown fields and
mismatched versions are rejected at the boundary with a
:class:`WireFormatError` rather than surfacing as attribute errors deep
inside the pipeline.

The wire types are deliberately *flat* (strings, numbers, tuples of
plain dicts): an engine-level :class:`~repro.eval.harness.TranslationTask`
holds a live :class:`~repro.schema.Database` object and can never cross
a socket.  Conversion between the two worlds happens in exactly one
place — :func:`task_from_request` / :func:`response_from_result` — so
the server and the batch engine construct byte-identical tasks.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional

#: Version of the wire contract; bumped on any incompatible field change.
SCHEMA_VERSION = 1


class WireFormatError(ValueError):
    """A payload violated the wire contract (shape, types, or version)."""


def _check_version(data: dict, cls_name: str) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"{cls_name}: unsupported schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )


def _from_dict(cls, data: dict):
    """Shared strict constructor: reject unknown fields, check version."""
    if not isinstance(data, dict):
        raise WireFormatError(f"{cls.__name__}: expected an object")
    _check_version(data, cls.__name__)
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise WireFormatError(
            f"{cls.__name__}: unknown field(s) {', '.join(unknown)}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise WireFormatError(f"{cls.__name__}: {exc}") from exc


def _from_json(cls, text):
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"{cls.__name__}: invalid JSON: {exc}") from exc
    return _from_dict(cls, data)


class _WireMixin:
    """``to_dict``/``to_json`` plus the strict ``from_*`` constructors."""

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """The canonical JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict):
        """Strict inverse of :meth:`to_dict` (unknown fields rejected)."""
        return _from_dict(cls, data)

    @classmethod
    def from_json(cls, text):
        """Strict inverse of :meth:`to_json`."""
        return _from_json(cls, text)


@dataclass(frozen=True)
class TranslateRequest(_WireMixin):
    """One NL→SQL translation request.

    ``request_id`` doubles as the request's observability *lane* (the
    same role an example id plays in the batch engine); when empty the
    service assigns a deterministic per-tenant sequence id.
    """

    question: str
    db_id: str
    tenant: str = "default"
    request_id: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.question, str) or not self.question.strip():
            raise WireFormatError("TranslateRequest: question must be a "
                                  "non-empty string")
        if not isinstance(self.db_id, str) or not self.db_id:
            raise WireFormatError("TranslateRequest: db_id must be a "
                                  "non-empty string")


@dataclass(frozen=True)
class TranslateResponse(_WireMixin):
    """The answer to a :class:`TranslateRequest`, with its cost record.

    Mirrors :class:`~repro.eval.harness.TranslationResult` field-for-field
    on the resilience record, plus the serving-only ``shed`` flag (the
    request was admitted in degraded mode) and ``latency_ms``.
    """

    sql: str
    request_id: str = ""
    tenant: str = "default"
    db_id: str = ""
    prompt_tokens: int = 0
    output_tokens: int = 0
    llm_calls: int = 0
    degradation_level: int = 0
    retries: int = 0
    best_effort: bool = False
    repair_rounds: int = 0
    repaired: bool = False
    shed: bool = False
    latency_ms: float = 0.0
    schema_version: int = SCHEMA_VERSION


@dataclass(frozen=True)
class ExplainResponse(_WireMixin):
    """Diagnostics and pipeline provenance for one question (and
    optionally one SQL text analyzed against the tenant schema).

    ``diagnostics`` carries :meth:`~repro.analysis.diagnostics.Diagnostic.as_dict`
    entries from :mod:`repro.analysis.sqlcheck`; ``skeletons`` and
    ``demonstrations`` expose what PURPLE's retrieval actually did —
    predicted skeleton tokens with probabilities, and the selected
    demonstrations with the automaton level that matched them.
    """

    request_id: str = ""
    tenant: str = "default"
    db_id: str = ""
    sql: str = ""
    diagnostics: tuple = ()
    skeletons: tuple = ()
    demonstrations: tuple = ()
    pruned_tables: tuple = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        # JSON decodes tuples as lists; normalize so equality and
        # hashing behave across a round-trip.
        for name in ("diagnostics", "skeletons", "demonstrations",
                     "pruned_tables"):
            object.__setattr__(self, name, tuple(getattr(self, name)))


@dataclass(frozen=True)
class ErrorEnvelope(_WireMixin):
    """The single error shape every endpoint returns.

    ``code`` is a stable machine-readable token (``bad_request``,
    ``unknown_tenant``, ``unknown_database``, ``unsupported``,
    ``overloaded``, ``execution_error``); ``status`` the HTTP status the
    server pairs it with (carried on the wire so non-HTTP transports
    agree on severity).
    """

    code: str
    message: str
    request_id: str = ""
    status: int = 400
    schema_version: int = SCHEMA_VERSION


@dataclass(frozen=True)
class ExecuteRequest(_WireMixin):
    """Run one SQL statement against a tenant database."""

    sql: str
    db_id: str
    tenant: str = "default"
    request_id: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise WireFormatError("ExecuteRequest: sql must be a "
                                  "non-empty string")
        if not isinstance(self.db_id, str) or not self.db_id:
            raise WireFormatError("ExecuteRequest: db_id must be a "
                                  "non-empty string")


@dataclass(frozen=True)
class ExecuteResponse(_WireMixin):
    """Rows (or the normalized execution error) for one statement."""

    request_id: str = ""
    tenant: str = "default"
    db_id: str = ""
    columns: tuple = ()
    rows: tuple = ()
    row_count: int = 0
    error: Optional[str] = None
    error_code: Optional[str] = None
    timed_out: bool = False
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(
            self, "rows", tuple(tuple(row) for row in self.rows)
        )


# ---------------------------------------------------------------------------
# The one wire ↔ engine conversion boundary
# ---------------------------------------------------------------------------


def task_from_request(request: TranslateRequest, database):
    """Build the engine-level task a wire request describes.

    ``database`` is the live :class:`~repro.schema.Database` the caller
    resolved for ``request.db_id`` (the wire layer never owns schema
    resolution — tenants do).
    """
    from repro.eval.harness import TranslationTask

    return TranslationTask(question=request.question, database=database)


def response_from_result(
    request: TranslateRequest,
    result,
    shed: bool = False,
    latency_ms: float = 0.0,
) -> TranslateResponse:
    """Flatten an engine :class:`~repro.eval.harness.TranslationResult`
    onto the wire, preserving the full resilience record."""
    usage = result.usage
    return TranslateResponse(
        sql=result.sql,
        request_id=request.request_id,
        tenant=request.tenant,
        db_id=request.db_id,
        prompt_tokens=usage.prompt_tokens,
        output_tokens=usage.output_tokens,
        llm_calls=usage.calls,
        degradation_level=result.degradation_level,
        retries=result.retries,
        best_effort=result.best_effort,
        repair_rounds=result.repair_rounds,
        repaired=result.repaired,
        shed=shed,
        latency_ms=round(latency_ms, 3),
    )
