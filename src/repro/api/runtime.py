"""Shared run-construction plumbing for the CLI and the serving layer.

``repro evaluate``, ``repro translate``, and ``repro serve`` must build
*identical* stacks — the same provider wrapping, the same approach
configuration, the same observer — or a served request and a batch task
stop being comparable.  This module is that single assembly point: the
CLI subcommands and :mod:`repro.serve` both consume it and add nothing
of their own.

Errors raise :class:`RuntimeConfigError` (a ``ValueError``) rather than
``SystemExit`` so the long-lived server can turn them into error
envelopes; the CLI converts them to exits at its boundary.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import Observer, write_trace

#: Approach-specific knobs that only the PURPLE factory accepts.
_PURPLE_ONLY = (
    "--store/--offline-index/--repair-rounds/--repair-token-budget/--retrieval"
)


class RuntimeConfigError(ValueError):
    """A run was configured inconsistently (bad approach/knob pairing)."""


def make_llm(llm_name: str, cache_dir=None, latency: Optional[dict] = None):
    """The provider stack: mock LLM, optional latency, optional cache.

    ``latency`` (``{"base": s, "jitter": s, "seed": n}``) wraps the
    provider in :class:`~repro.llm.latency.SimulatedLatencyLLM` — the
    serving benchmarks use it so measured qps reflects network-bound
    round-trips, not instant mock completions.
    """
    from repro.llm import (
        CachingLLM,
        MockLLM,
        PromptCache,
        SimulatedLatencyLLM,
        profile_by_name,
    )

    llm = MockLLM(profile_by_name(llm_name))
    if latency:
        llm = SimulatedLatencyLLM(
            llm,
            base=latency.get("base", 0.03),
            jitter=latency.get("jitter", 0.0),
            seed=latency.get("seed", 0),
        )
    if cache_dir is not None:
        llm = CachingLLM(llm, cache=PromptCache(cache_dir=cache_dir))
    return llm


def build_approach(name: str, llm, train, budget: int, consistency: int,
                   store=None, offline_index: bool = False,
                   repair_rounds: int = 0, repair_token_budget=None,
                   dialect: str = "sqlite", retrieval: str = "off"):
    """Construct (and fit) an approach through the registry.

    Raises :class:`RuntimeConfigError` when a purple-only knob is
    paired with another approach, and lets the registry's
    ``UnknownApproachError`` / the store's ``StoreError`` propagate for
    the caller's boundary to render.
    """
    from repro import api

    extra = {}
    if store is not None or offline_index:
        if name != "purple":
            raise RuntimeConfigError(
                "--store/--offline-index apply to the purple approach only"
            )
        extra = {"store_path": store, "offline_index": offline_index}
    if repair_rounds or repair_token_budget is not None:
        if name != "purple":
            raise RuntimeConfigError(
                "--repair-rounds/--repair-token-budget apply to the "
                "purple approach only"
            )
        extra["repair_rounds"] = repair_rounds
        if repair_token_budget is not None:
            extra["repair_token_budget"] = repair_token_budget
    if dialect != "sqlite":
        if name != "purple":
            raise RuntimeConfigError(
                "--dialect applies to the purple approach only"
            )
        extra["dialect"] = dialect
    if retrieval != "off":
        if name != "purple":
            raise RuntimeConfigError(
                "--retrieval applies to the purple approach only"
            )
        extra["retrieval"] = retrieval
    return api.create(
        name, llm=llm, train=train, budget=budget,
        consistency_n=consistency, **extra,
    )


def make_observer(
    log_level: str = "off",
    trace: bool = False,
    sink: Optional[Callable] = None,
    seed: int = 0,
) -> Optional[Observer]:
    """The run observer implied by a trace/log configuration.

    Returns ``None`` when neither tracing nor streaming is requested —
    the zero-overhead default.  With ``trace=True`` events are collected
    even when nothing streams live (the trace file wants them); with a
    live ``log_level`` they also stream to ``sink``.
    """
    streaming = log_level != "off"
    if not trace and not streaming:
        return None
    return Observer(
        seed=seed,
        log_level=log_level if streaming else "info",
        log_sink=sink if streaming else None,
    )


def export_trace(observer: Observer, path, meta: Optional[dict] = None) -> int:
    """Write the observer's trace as JSONL; returns the line count."""
    return write_trace(observer, path, meta=dict(meta or {}))


def make_live(
    observer: Optional[Observer],
    window_s: float = 60.0,
    trace_capacity: int = 256,
    slow_ms: float = 1000.0,
    availability: float = 0.999,
    latency_target_ms: float = 2000.0,
    prune_lanes: bool = True,
    clock=None,
):
    """The continuous-telemetry layer for a long-lived ``repro serve``.

    One assembly point (like :func:`make_observer`) so the CLI and
    tests wire identical :class:`~repro.obs.LiveTelemetry` stacks.
    ``prune_lanes`` defaults to True here — a server that captured a
    request's trace should release the tracer's copy — while the
    library default is False (batch observers keep their full trace).
    """
    from repro.obs import LiveConfig, LiveTelemetry, SLOObjectives

    return LiveTelemetry(
        observer=observer,
        config=LiveConfig(
            window_s=window_s,
            trace_capacity=trace_capacity,
            slow_ms=slow_ms,
            prune_lanes=prune_lanes,
        ),
        objectives=SLOObjectives(
            availability=availability,
            latency_ms=latency_target_ms,
        ),
        clock=clock,
    )
