"""Evaluation: exact-set match, execution match, test-suite accuracy,
token/cost accounting, and the experiment harness."""

from repro.eval.cost import TokenUsage
from repro.eval.exact_match import em_signature, exact_set_match
from repro.eval.execution import (
    GoldExecutionError,
    execution_match,
    gold_executes,
    results_equal,
)
from repro.eval.harness import (
    EvaluationReport,
    ExampleOutcome,
    NL2SQLApproach,
    TranslationResult,
    TranslationTask,
    build_suites_for_dataset,
    evaluate_approach,
)
from repro.eval.engine import map_ordered
from repro.eval.reporting import (
    diagnostics_summary,
    hardness_table,
    markdown_table,
    performance_summary,
    performance_table,
    save_csv,
    summary_rows,
    telemetry_summary,
    to_csv,
)
from repro.eval.timing import RunTiming, TaskTiming, collect_stages, stage
from repro.eval.test_suite import (
    TestSuite,
    build_test_suite,
    fuzz_database,
    generate_mutants,
)

__all__ = [
    "TokenUsage",
    "em_signature",
    "exact_set_match",
    "GoldExecutionError",
    "execution_match",
    "gold_executes",
    "results_equal",
    "EvaluationReport",
    "ExampleOutcome",
    "NL2SQLApproach",
    "TranslationResult",
    "TranslationTask",
    "build_suites_for_dataset",
    "evaluate_approach",
    "map_ordered",
    "RunTiming",
    "TaskTiming",
    "collect_stages",
    "stage",
    "diagnostics_summary",
    "hardness_table",
    "markdown_table",
    "performance_summary",
    "performance_table",
    "save_csv",
    "summary_rows",
    "telemetry_summary",
    "to_csv",
    "TestSuite",
    "build_test_suite",
    "fuzz_database",
    "generate_mutants",
]
