"""Per-stage and per-task timing for evaluation runs.

The engine wants to answer two questions about a run: *where does the
time go* (prune / skeleton / select / llm / adapt / execute) and *what
latency distribution do tasks see* (p50/p95, throughput).  Pipeline
stages report themselves through the :func:`stage` context manager; the
engine installs a collector around each task with :func:`collect_stages`
and assembles the per-task records into a :class:`RunTiming`.

The collector lives in a :class:`contextvars.ContextVar`, so worker
threads time their own task without locking, and code instrumented with
``stage(...)`` is a near-no-op when no evaluation is collecting.

Timing is intentionally kept *outside* :class:`ExampleOutcome`: wall
times differ run to run, while outcomes are the byte-identical part of
the report that determinism tests compare.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.runtime import end_span as _obs_end_span
from repro.obs.runtime import start_span as _obs_start_span

#: Canonical stage names in pipeline order (others are allowed).
STAGE_ORDER = (
    "prune", "skeleton", "select", "llm", "adapt", "repair", "execute", "score"
)

_COLLECTOR: ContextVar[Optional[dict]] = ContextVar(
    "repro_stage_collector", default=None
)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Attribute the enclosed block's wall time to stage ``name``.

    A no-op (beyond one contextvar read each for the collector and the
    observer) when neither timing nor tracing is active.  With an
    observer active the block additionally becomes a ``stage:<name>``
    span in the trace.
    """
    acc = _COLLECTOR.get()
    span = _obs_start_span(f"stage:{name}")
    if acc is None and span is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        if acc is not None:
            acc[name] = acc.get(name, 0.0) + time.perf_counter() - started
        _obs_end_span(span)


@contextmanager
def collect_stages(into: dict) -> Iterator[dict]:
    """Install ``into`` as the stage collector for the enclosed block."""
    token = _COLLECTOR.set(into)
    try:
        yield into
    finally:
        _COLLECTOR.reset(token)


@dataclass
class TaskTiming:
    """Wall-clock record for one evaluated task."""

    ex_id: str
    latency: float
    stages: dict = field(default_factory=dict)


@dataclass
class RunTiming:
    """Wall-clock profile of one evaluation run.

    ``wall_time`` is the end-to-end dispatch time; ``tasks`` holds one
    :class:`TaskTiming` per outcome, in task order.
    """

    wall_time: float = 0.0
    workers: int = 1
    tasks: list = field(default_factory=list)

    def throughput(self) -> float:
        """Tasks completed per second of wall time."""
        if self.wall_time <= 0.0:
            return 0.0
        return len(self.tasks) / self.wall_time

    def latencies(self) -> list:
        """Per-task latencies in task order."""
        return [t.latency for t in self.tasks]

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of task latency.

        ``ceil(q/100 * n)`` is the nearest-rank definition: p95 over 100
        samples is the 95th order statistic, p0 and p100 clamp to the
        extremes.
        """
        values = sorted(self.latencies())
        if not values:
            return 0.0
        rank = max(math.ceil(q / 100.0 * len(values)), 1)
        return values[min(rank, len(values)) - 1]

    def stage_totals(self) -> dict:
        """Total seconds per stage, canonical stages first."""
        totals: dict[str, float] = {}
        for task in self.tasks:
            for name, seconds in task.stages.items():
                totals[name] = totals.get(name, 0.0) + seconds
        ordered = {k: totals.pop(k) for k in STAGE_ORDER if k in totals}
        ordered.update(dict(sorted(totals.items())))
        return ordered
