"""The experiment harness: run an approach over a dataset, score it.

An *approach* is anything implementing the small protocol below —
PURPLE, every baseline, and ablated variants all plug in the same way,
which is how the benchmark scripts regenerate the paper's tables.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.analysis.diagnostics import record_diagnostics
from repro.analysis.dialects import DialectAnalyzer
from repro.analysis.sqlcheck import fatal_diagnostics
from repro.eval.cost import TokenUsage
from repro.eval.engine import map_ordered
from repro.eval.exact_match import exact_set_match
from repro.eval.execution import (
    GoldExecutionError,
    execution_match,
    gold_executes,
)
from repro.eval.test_suite import TestSuite, build_test_suite
from repro.eval.timing import RunTiming, stage
from repro.llm.errors import LLMError, failure_fields
from repro.obs import runtime as obs
from repro.obs.telemetry import RunTelemetry
from repro.schema import Database, SQLiteExecutor, exception_text, make_executor
from repro.spider.dataset import Dataset

HARDNESS_ORDER = ("easy", "medium", "hard", "extra")


@dataclass
class TranslationTask:
    """What an approach sees for one query: the question and the database.

    The gold SQL is deliberately *not* part of the task.
    """

    question: str
    database: Database

    @property
    def db_id(self) -> str:
        """The task database's identifier."""
        return self.database.db_id


@dataclass
class TranslationResult:
    """An approach's answer plus its API cost and resilience record.

    The resilience fields default to the happy path (no degradation, no
    retries) so approaches without a fault-handling layer are unchanged.
    ``best_effort`` marks answers produced by the last-resort fallback
    after every prompt rung failed — executable but not LLM-derived.
    ``repair_rounds`` counts execution-feedback repair rounds spent on
    this answer and ``repaired`` whether one of them recovered it (both
    zero-valued on approaches without the repair loop).
    """

    sql: str
    usage: TokenUsage = field(default_factory=TokenUsage)
    degradation_level: int = 0
    retries: int = 0
    best_effort: bool = False
    events: tuple = ()
    repair_rounds: int = 0
    repaired: bool = False


class NL2SQLApproach(Protocol):
    """The protocol every approach implements."""

    name: str

    def translate(self, task: TranslationTask) -> TranslationResult:
        """Translate one NL question to SQL (NL2SQLApproach protocol)."""
        ...


@dataclass
class ExampleOutcome:
    """Per-example scoring record.

    ``answered`` is False when the approach could not produce an
    LLM-derived answer (best-effort fallback or an unhandled provider
    error); ``eval_error`` marks tasks whose *gold* SQL failed to
    execute — those are excluded from the accuracy rates.
    """

    ex_id: str
    hardness: str
    predicted_sql: str
    em: bool
    ex: bool
    ts: Optional[bool] = None
    usage: TokenUsage = field(default_factory=TokenUsage)
    answered: bool = True
    degradation_level: int = 0
    retries: int = 0
    eval_error: Optional[str] = None
    repair_rounds: int = 0
    repaired: bool = False


@dataclass
class EvaluationReport:
    """Aggregated metrics for one (approach, dataset) run.

    ``timing`` profiles the run (wall time, per-stage seconds, latency
    percentiles) and ``telemetry`` rolls up what the wrapper stack did
    (cache hits, retries, breaker openings, degradations) when the run
    was observed; both are deliberately separate from ``outcomes``,
    which stay byte-identical across worker counts and with telemetry
    on or off.
    """

    approach: str
    dataset: str
    outcomes: list = field(default_factory=list)
    #: execution axis the run was scored on ("sqlite" or "postgres")
    dialect: str = "sqlite"
    timing: Optional[RunTiming] = None
    telemetry: Optional[RunTelemetry] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def scored(self) -> list:
        """Outcomes that count toward accuracy (gold executed cleanly)."""
        return [o for o in self.outcomes if o.eval_error is None]

    @property
    def em(self) -> float:
        """Exact-set-match accuracy."""
        return _rate([o.em for o in self.scored()])

    @property
    def ex(self) -> float:
        """Execution-match accuracy."""
        return _rate([o.ex for o in self.scored()])

    @property
    def ts(self) -> float:
        """Test-suite accuracy over the scored outcomes."""
        scored = [o.ts for o in self.scored() if o.ts is not None]
        return _rate(scored)

    @property
    def availability(self) -> float:
        """Fraction of tasks that got an LLM-derived answer.

        Accuracy says how *good* the answers were; availability says how
        often the service produced one at all under faults.
        """
        return _rate([o.answered for o in self.outcomes])

    @property
    def eval_errors(self) -> int:
        """Tasks skipped because their gold SQL failed to execute."""
        return sum(1 for o in self.outcomes if o.eval_error is not None)

    @property
    def total_retries(self) -> int:
        """Provider retries summed over all tasks."""
        return sum(o.retries for o in self.outcomes)

    @property
    def total_repair_rounds(self) -> int:
        """Execution-feedback repair rounds summed over all tasks."""
        return sum(o.repair_rounds for o in self.outcomes)

    @property
    def repaired_count(self) -> int:
        """Tasks whose answer was recovered by the repair loop."""
        return sum(1 for o in self.outcomes if o.repaired)

    def retries_per_query(self) -> float:
        """Average provider retries per evaluated query."""
        if not self.outcomes:
            return 0.0
        return self.total_retries / len(self.outcomes)

    def by_hardness(self, metric: str = "em") -> dict:
        """Per-hardness-level accuracy for the given metric."""
        buckets: dict[str, list[bool]] = {}
        for outcome in self.scored():
            value = getattr(outcome, metric)
            if value is None:
                continue
            buckets.setdefault(outcome.hardness, []).append(value)
        return {
            level: _rate(buckets[level])
            for level in HARDNESS_ORDER
            if level in buckets
        }

    @property
    def usage(self) -> TokenUsage:
        """Total token usage across all outcomes."""
        total = TokenUsage()
        for outcome in self.outcomes:
            total.add(outcome.usage)
        return total

    def tokens_per_query(self) -> int:
        """Average total tokens per evaluated query."""
        if not self.outcomes:
            return 0
        return self.usage.total_tokens // len(self.outcomes)


def _rate(values: list) -> float:
    if not values:
        return 0.0
    return sum(1 for v in values if v) / len(values)


def evaluate_approach(
    approach: NL2SQLApproach,
    dataset: Dataset,
    test_suites: Optional[dict] = None,
    limit: Optional[int] = None,
    workers: int = 1,
    observer=None,
    static_guard: bool = False,
    dialect: str = "sqlite",
) -> EvaluationReport:
    """Run ``approach`` over ``dataset`` and compute EM/EX (and TS when
    suites are supplied as ``{db_id: TestSuite}``).

    ``workers`` sizes the thread pool; outcomes are reassembled in task
    order, so any worker count yields the identical report (timing
    aside).  Each worker thread scores on its own
    :class:`~repro.schema.SQLiteExecutor`.

    Pass an ``observer`` (:class:`repro.obs.Observer`) to trace the run:
    every task gets a root span with per-stage children, the wrapper
    stack feeds the metrics registry, and the report's ``telemetry``
    field carries the roll-up.  Outcomes are byte-identical with or
    without one.

    ``static_guard=True`` runs the schema-aware analyzer over each
    prediction first and skips executing predictions it proves fatal
    (they can only score EX=False / TS=False); the gold SQL still
    executes so gold failures surface identically, and EM is computed
    regardless, so every score is byte-identical with the guard off.

    ``dialect`` picks the execution axis: ``sqlite`` (the default,
    byte-identical to the historical harness) or ``postgres`` (the
    simulated profile from :mod:`repro.schema.dialect_backend`).  The
    guard analyzer targets the same dialect, so statements the target
    engine would refuse are skipped with ``dlct.*`` findings and failed
    executions carry dialect-specific error codes into the repair loop.
    """
    report = EvaluationReport(
        approach=approach.name, dataset=dataset.name, dialect=dialect
    )
    examples = dataset.examples[:limit] if limit else dataset.examples
    needed_dbs = sorted({ex.db_id for ex in examples})
    analyzers: dict = {}
    if static_guard:
        analyzers = {
            db_id: DialectAnalyzer(
                dataset.database(db_id).schema, dialect=dialect
            )
            for db_id in needed_dbs
        }

    # One scoring executor per worker thread, created on first use and
    # closed when the run is over.
    thread_state = threading.local()
    executors: list = []
    executors_lock = threading.Lock()

    def _executor() -> SQLiteExecutor:
        executor = getattr(thread_state, "executor", None)
        if executor is None:
            executor = make_executor(dialect)
            for db_id in needed_dbs:
                executor.register(dataset.database(db_id))
            thread_state.executor = executor
            with executors_lock:
                executors.append(executor)
        return executor

    def _evaluate_one(example) -> ExampleOutcome:
        task = TranslationTask(
            question=example.question,
            database=dataset.database(example.db_id),
        )
        obs.annotate(hardness=example.hardness, db_id=example.db_id)
        obs.count("tasks.evaluated")
        try:
            result = approach.translate(task)
        except LLMError as exc:
            # An approach without a degradation ladder let a provider
            # error through: record an unanswered outcome and keep the
            # run alive rather than losing every task after this one.
            obs.count("tasks.unanswered")
            obs.event(
                "task.unanswered",
                level="error",
                ex_id=example.ex_id,
                **failure_fields(exc),
            )
            return ExampleOutcome(
                ex_id=example.ex_id,
                hardness=example.hardness,
                predicted_sql="",
                em=False,
                ex=False,
                answered=False,
                eval_error=None,
                retries=0,
            )
        eval_error = None
        doomed = False
        with stage("execute"):
            try:
                if static_guard:
                    diagnostics = analyzers[example.db_id].analyze(result.sql)
                    record_diagnostics(diagnostics)
                    obs.count("guard.checked")
                    doomed = bool(fatal_diagnostics(diagnostics))
                if doomed:
                    # Statically proven to fail: EX is False without
                    # executing the prediction.  The gold still runs so
                    # broken gold SQL surfaces exactly as it would have.
                    obs.count("guard.skipped")
                    gold_executes(_executor(), example.db_id, example.sql)
                    ex = False
                else:
                    ex = execution_match(
                        _executor(), example.db_id, example.sql, result.sql
                    )
            except GoldExecutionError as exc:
                ex = False
                eval_error = exception_text(exc)
                fields = {"error": eval_error}
                if exc.info is not None:
                    fields["error_code"] = exc.info.code
                obs.count("tasks.eval_errors")
                obs.event(
                    "task.eval_error",
                    level="warning",
                    ex_id=example.ex_id,
                    **fields,
                )
        with stage("score"):
            em = exact_set_match(example.sql, result.sql)
            ts = None
            if (
                eval_error is None
                and test_suites is not None
                and example.db_id in test_suites
            ):
                if doomed:
                    # The suite's base is this dataset database, where the
                    # gold just executed cleanly; a statically-fatal
                    # prediction fails there, so match() returns False on
                    # its first key without running anything.
                    ts = False
                else:
                    ts = test_suites[example.db_id].match(
                        example.sql, result.sql
                    )
        obs.annotate(
            em=em,
            ex=ex,
            degradation_level=result.degradation_level,
            retries=result.retries,
        )
        return ExampleOutcome(
            ex_id=example.ex_id,
            hardness=example.hardness,
            predicted_sql=result.sql,
            em=em,
            ex=ex,
            ts=ts,
            usage=result.usage,
            answered=not result.best_effort,
            degradation_level=result.degradation_level,
            retries=result.retries,
            eval_error=eval_error,
            repair_rounds=result.repair_rounds,
            repaired=result.repaired,
        )

    if observer is not None:
        _publish_index_stats(approach, observer)
    started = time.perf_counter()
    try:
        outcomes, task_timings = map_ordered(
            _evaluate_one,
            examples,
            workers=workers,
            lane_of=lambda example: example.ex_id,
            observer=observer,
        )
    finally:
        with executors_lock:
            for executor in executors:
                executor.close()
    report.outcomes = list(outcomes)
    report.timing = RunTiming(
        wall_time=time.perf_counter() - started,
        workers=max(workers, 1),
        tasks=list(task_timings),
    )
    if observer is not None:
        report.telemetry = observer.telemetry()
    return report


def _publish_index_stats(approach, observer) -> None:
    """Surface the approach's demonstration-index provenance in the run.

    ``fit`` usually runs before an observer exists, so its
    ``index.build``/``index.load`` instrumentation lands nowhere.  Any
    approach that records ``index_stats`` at fit time (PURPLE does —
    source, elapsed ms, pool size, per-level state counts) gets them
    re-emitted here as gauges plus one ``index.source`` event, so a
    trace of the run still says whether the automaton was warm-started
    from a store or rebuilt cold.
    """
    stats = getattr(approach, "index_stats", None)
    if not stats:
        return
    with observer.activate():
        obs.gauge("index.pool_size", stats.get("pool_size", 0))
        for level, states in sorted(stats.get("states", {}).items()):
            obs.gauge("index.states", states, level=str(level))
        obs.event(
            "index.source",
            source=stats.get("source", "unknown"),
            elapsed_ms=stats.get("elapsed_ms", 0.0),
        )


def build_suites_for_dataset(
    dataset: Dataset, folds: int = 6, seed: int = 0
) -> dict:
    """One distilled test suite per database in the dataset."""
    suites = {}
    sql_by_db: dict[str, list] = {}
    for ex in dataset.examples:
        sql_by_db.setdefault(ex.db_id, []).append(ex.sql)
    for db_id, database in dataset.databases.items():
        suites[db_id] = build_test_suite(
            database, sql_by_db.get(db_id, []), folds=folds, seed=seed
        )
    return suites
