"""Exact-Set Match (EM) — Spider's official component-level metric.

Two SQL queries match when, clause by clause, their components are equal
*as sets*: projection items, FROM tables, join conditions, flattened WHERE
conjuncts, GROUP BY keys, HAVING conditions, ORDER BY keys (ordered) and
LIMIT.  Aliases are resolved to real table names, identifiers are
case-insensitive, and constant values are masked (Spider's EM ignores
values), so ``>= 4`` vs ``> 3`` differ by operator but not by constant.

The metric is deliberately strict: a semantically equivalent query using a
different logical operator composition (``NOT IN`` vs ``EXCEPT``) does NOT
match — that is the gap PURPLE closes.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlkit.ast_nodes import (
    Agg,
    BetweenExpr,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    Node,
    OrderItem,
    Query,
    SelectCore,
    Star,
    Subquery,
    SubquerySource,
    TableRef,
    ValueList,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql

_VALUE = "<v>"


def exact_set_match(gold_sql: str, predicted_sql: str) -> bool:
    """True when the two queries are component-set equal."""
    try:
        gold = parse_sql(gold_sql)
        pred = parse_sql(predicted_sql)
    except SQLError:
        return False
    return em_signature(gold) == em_signature(pred)


def em_signature(query: Query) -> tuple:
    """A hashable canonical signature of a query for EM comparison."""
    parts = [_core_signature(query.core)]
    for op, rhs in query.compounds:
        rhs_sig = (
            em_signature(rhs) if isinstance(rhs, Query) else _core_signature(rhs)
        )
        parts.append((op, rhs_sig))
    return tuple(parts)


def _core_signature(core: SelectCore) -> tuple:
    aliases = _alias_map(core.from_clause)
    sole = _sole_table(core.from_clause)

    select = frozenset(
        _expr_sig(item.expr, aliases, sole) for item in core.items
    )
    from_tables, join_conds = _from_signature(core.from_clause, aliases, sole)
    where = _cond_sig(core.where, aliases, sole)
    group = frozenset(_expr_sig(g, aliases, sole) for g in core.group_by)
    having = _cond_sig(core.having, aliases, sole)
    order = tuple(_order_sig(o, aliases, sole) for o in core.order_by)
    return (
        ("select", core.distinct, select),
        ("from", from_tables, join_conds),
        ("where", where),
        ("group", group),
        ("having", having),
        ("order", order),
        ("limit", core.limit),
    )


# -- alias handling -----------------------------------------------------------


def _alias_map(from_clause: Optional[FromClause]) -> dict:
    aliases: dict[str, str] = {}
    if from_clause is None:
        return aliases
    for source in from_clause.sources():
        if isinstance(source, TableRef):
            name = source.name.lower()
            aliases[name] = name
            if source.alias:
                aliases[source.alias.lower()] = name
        elif isinstance(source, SubquerySource) and source.alias:
            aliases[source.alias.lower()] = f"<sub:{source.alias.lower()}>"
    return aliases


def _sole_table(from_clause: Optional[FromClause]) -> Optional[str]:
    if from_clause is None:
        return None
    refs = [s for s in from_clause.sources() if isinstance(s, TableRef)]
    if len(refs) == 1 and len(from_clause.sources()) == 1:
        return refs[0].name.lower()
    return None


def _column_sig(ref: ColumnRef, aliases: dict, sole: Optional[str]) -> tuple:
    column = ref.column.lower()
    if ref.table:
        table = aliases.get(ref.table.lower(), ref.table.lower())
    elif sole is not None:
        table = sole
    else:
        table = ""
    return ("col", table, column)


# -- expressions --------------------------------------------------------------


def _expr_sig(node: Node, aliases: dict, sole: Optional[str]):
    if isinstance(node, ColumnRef):
        return _column_sig(node, aliases, sole)
    if isinstance(node, Star):
        return ("star",)
    if isinstance(node, Literal):
        return ("lit", _VALUE)
    if isinstance(node, Agg):
        args = tuple(_expr_sig(a, aliases, sole) for a in node.args)
        return ("agg", node.func.upper(), node.distinct, args)
    if isinstance(node, FuncCall):
        args = tuple(_expr_sig(a, aliases, sole) for a in node.args)
        return ("func", node.name.upper(), args)
    if isinstance(node, BinaryOp):
        return (
            "arith",
            node.op,
            _expr_sig(node.left, aliases, sole),
            _expr_sig(node.right, aliases, sole),
        )
    if isinstance(node, Subquery):
        return ("subquery", em_signature(node.query))
    raise TypeError(f"unexpected expression node {type(node).__name__}")


def _order_sig(item: OrderItem, aliases: dict, sole: Optional[str]) -> tuple:
    return (_expr_sig(item.expr, aliases, sole), item.direction)


# -- FROM ----------------------------------------------------------------------


def _from_signature(
    from_clause: Optional[FromClause], aliases: dict, sole: Optional[str]
) -> tuple:
    if from_clause is None:
        return frozenset(), frozenset()
    tables = []
    for source in from_clause.sources():
        if isinstance(source, TableRef):
            tables.append(source.name.lower())
        else:
            tables.append(("subquery", em_signature(source.query)))
    conds = []
    for join in from_clause.joins:
        if join.on is None:
            continue
        sig = _cond_sig(join.on, aliases, sole)
        conds.append(_symmetrize(sig))
    return frozenset(tables), frozenset(conds)


def _symmetrize(sig):
    """Join conditions ``a = b`` and ``b = a`` are the same component."""
    if (
        isinstance(sig, tuple)
        and len(sig) == 4
        and sig[0] == "cmp"
        and sig[1] == "="
    ):
        left, right = sig[2], sig[3]
        lo, hi = sorted([left, right], key=repr)
        return ("cmp", "=", lo, hi)
    return sig


# -- conditions -----------------------------------------------------------------


def _cond_sig(node: Optional[Node], aliases: dict, sole: Optional[str]):
    if node is None:
        return None
    if isinstance(node, BoolOp):
        terms = frozenset(_cond_sig(t, aliases, sole) for t in node.terms)
        return (node.op, terms)
    if isinstance(node, Comparison):
        return (
            "cmp",
            node.op,
            _expr_sig(node.left, aliases, sole),
            _expr_sig(node.right, aliases, sole),
        )
    if isinstance(node, InExpr):
        if isinstance(node.source, ValueList):
            source = ("values", _VALUE)
        else:
            source = _expr_sig(node.source, aliases, sole)
        return ("in", node.negated, _expr_sig(node.left, aliases, sole), source)
    if isinstance(node, LikeExpr):
        return ("like", node.negated, _expr_sig(node.left, aliases, sole), _VALUE)
    if isinstance(node, BetweenExpr):
        return ("between", node.negated, _expr_sig(node.left, aliases, sole))
    if isinstance(node, IsNullExpr):
        return ("isnull", node.negated, _expr_sig(node.left, aliases, sole))
    raise TypeError(f"unexpected condition node {type(node).__name__}")
