"""Execution Match (EX) — result-set equivalence on the actual database.

Gold and prediction both execute; results compare as multisets of rows,
or as ordered sequences when the gold query has a top-level ORDER BY.
Floats are compared with rounding so SQLite's AVG noise does not flip
verdicts.
"""

from __future__ import annotations

from repro.schema.sqlite_backend import ExecutionResult, SQLiteExecutor
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql

_FLOAT_DIGITS = 4


class GoldExecutionError(ValueError):
    """The *gold* SQL failed to execute — an evaluation-infrastructure
    problem, not a model error.

    The harness records such tasks as evaluation-error outcomes and keeps
    going; a ValueError subclass so pre-existing callers still catch it.
    """


def gold_executes(
    executor: SQLiteExecutor, db_key: str, gold_sql: str
) -> None:
    """Raise :class:`GoldExecutionError` when the gold SQL itself fails.

    Used by the harness's static guard before it skips a prediction: a
    broken gold query must still surface as an evaluation-infrastructure
    problem, with the same message :func:`execution_match` would raise.
    """
    gold_result = executor.execute(db_key, gold_sql)
    if not gold_result.ok:
        raise GoldExecutionError(
            f"gold SQL failed to execute: {gold_result.error}"
        )


def execution_match(
    executor: SQLiteExecutor,
    db_key: str,
    gold_sql: str,
    predicted_sql: str,
) -> bool:
    """True when the prediction's result matches the gold's."""
    gold_result = executor.execute(db_key, gold_sql)
    if not gold_result.ok:
        raise GoldExecutionError(
            f"gold SQL failed to execute: {gold_result.error}"
        )
    pred_result = executor.execute(db_key, predicted_sql)
    if not pred_result.ok:
        return False
    ordered = _gold_is_ordered(gold_sql)
    return results_equal(gold_result, pred_result, ordered=ordered)


def results_equal(
    gold: ExecutionResult, pred: ExecutionResult, ordered: bool = False
) -> bool:
    """Compare two execution results (multiset or ordered)."""
    assert gold.rows is not None and pred.rows is not None
    gold_rows = [_normalize_row(r) for r in gold.rows]
    pred_rows = [_normalize_row(r) for r in pred.rows]
    if len(gold_rows) != len(pred_rows):
        return False
    if gold_rows and len(gold_rows[0]) != len(pred_rows[0]):
        return False
    if ordered:
        return gold_rows == pred_rows
    return sorted(gold_rows, key=_key) == sorted(pred_rows, key=_key)


def _normalize_row(row: tuple) -> tuple:
    return tuple(
        round(v, _FLOAT_DIGITS) if isinstance(v, float) else v for v in row
    )


def _key(row: tuple):
    return tuple((v is None, type(v).__name__, str(v)) for v in row)


def _gold_is_ordered(gold_sql: str) -> bool:
    try:
        query = parse_sql(gold_sql)
    except SQLError:
        return False
    # Only the final core's ORDER BY orders a compound query's output.
    core = query.compounds[-1][1] if query.compounds else query.core
    final = core.core if hasattr(core, "core") else core
    return bool(final.order_by)
