"""Execution Match (EX) — result-set equivalence on the actual database.

Gold and prediction both execute; results compare as multisets of rows,
or as ordered sequences when the gold query has a top-level ORDER BY.
Floats are compared with rounding so SQLite's AVG noise does not flip
verdicts.
"""

from __future__ import annotations

from repro.schema.sqlite_backend import ExecutionResult, SQLiteExecutor
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql

_FLOAT_DIGITS = 4


class GoldExecutionError(ValueError):
    """The *gold* SQL failed to execute — an evaluation-infrastructure
    problem, not a model error.

    The harness records such tasks as evaluation-error outcomes and keeps
    going; a ValueError subclass so pre-existing callers still catch it.
    ``info`` carries the executor's normalized
    :class:`~repro.schema.errorinfo.ErrorInfo` when available.
    """

    def __init__(self, message: str, *, info=None):
        super().__init__(message)
        self.info = info


def gold_executes(
    executor: SQLiteExecutor, db_key: str, gold_sql: str
) -> None:
    """Raise :class:`GoldExecutionError` when the gold SQL itself fails.

    Used by the harness's static guard before it skips a prediction: a
    broken gold query must still surface as an evaluation-infrastructure
    problem, with the same message :func:`execution_match` would raise.
    """
    gold_result = executor.execute(db_key, gold_sql)
    if not gold_result.ok:
        raise GoldExecutionError(
            f"gold SQL failed to execute: {gold_result.error}",
            info=gold_result.info,
        )


def execution_match(
    executor: SQLiteExecutor,
    db_key: str,
    gold_sql: str,
    predicted_sql: str,
) -> bool:
    """True when the prediction's result matches the gold's."""
    gold_result = executor.execute(db_key, gold_sql)
    if not gold_result.ok:
        raise GoldExecutionError(
            f"gold SQL failed to execute: {gold_result.error}",
            info=gold_result.info,
        )
    pred_result = executor.execute(db_key, predicted_sql)
    if not pred_result.ok:
        return False
    ordered = _gold_is_ordered(gold_sql)
    return results_equal(gold_result, pred_result, ordered=ordered)


def results_equal(
    gold: ExecutionResult, pred: ExecutionResult, ordered: bool = False
) -> bool:
    """Compare two execution results (multiset or ordered)."""
    assert gold.rows is not None and pred.rows is not None
    gold_rows = [_normalize_row(r) for r in gold.rows]
    pred_rows = [_normalize_row(r) for r in pred.rows]
    if len(gold_rows) != len(pred_rows):
        return False
    if gold_rows and len(gold_rows[0]) != len(pred_rows[0]):
        return False
    if ordered:
        return gold_rows == pred_rows
    return sorted(gold_rows, key=_key) == sorted(pred_rows, key=_key)


def _normalize_row(row: tuple) -> tuple:
    return tuple(
        round(v, _FLOAT_DIGITS) if isinstance(v, float) else v for v in row
    )


def _key(row: tuple):
    return tuple((v is None, type(v).__name__, str(v)) for v in row)


def shape_implies_rows(sql: str):
    """The single FROM table of a query whose shape guarantees rows, or None.

    The execution-feedback repair loop treats an empty result as *suspect*
    only when the query cannot legitimately be empty: a plain projection
    over exactly one table with no WHERE/HAVING/GROUP BY, no joins, no
    LIMIT, and no compound — such a query returns one row per table row,
    so an empty result on a non-empty table means the model selected from
    the wrong place.  Returns the table name to let the caller check the
    table actually has rows; any richer shape returns None (never
    suspect), which keeps the trigger free of false positives.
    """
    try:
        query = parse_sql(sql)
    except SQLError:
        return None
    if query.compounds:
        return None
    core = query.core
    if (
        core.where is not None
        or core.having is not None
        or core.group_by
        or core.limit is not None
        or core.from_clause is None
        or core.from_clause.joins
    ):
        return None
    from repro.sqlkit.ast_nodes import Subquery, TableRef, walk

    if any(isinstance(node, Subquery) for node in walk(query)):
        return None
    source = core.from_clause.first
    if not isinstance(source, TableRef):
        return None
    return source.name


def _gold_is_ordered(gold_sql: str) -> bool:
    try:
        query = parse_sql(gold_sql)
    except SQLError:
        return False
    # Only the final core's ORDER BY orders a compound query's output.
    core = query.compounds[-1][1] if query.compounds else query.core
    final = core.core if hasattr(core, "core") else core
    return bool(final.order_by)
