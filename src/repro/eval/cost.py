"""Token/cost accounting for LLM API usage (paper §V-D).

The paper reports prompt-length/response-count trade-offs in tokens per
query.  Approaches report their token usage per translation; this module
aggregates it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TokenUsage:
    """Token usage of one translation (or an aggregate of many)."""

    prompt_tokens: int = 0
    output_tokens: int = 0
    calls: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus output tokens."""
        return self.prompt_tokens + self.output_tokens

    def add(self, other: "TokenUsage") -> None:
        """Accumulate another usage record into this one."""
        self.prompt_tokens += other.prompt_tokens
        self.output_tokens += other.output_tokens
        self.calls += other.calls

    def per_query(self, queries: int) -> "TokenUsage":
        """Average usage per query."""
        if queries <= 0:
            return TokenUsage()
        return TokenUsage(
            prompt_tokens=self.prompt_tokens // queries,
            output_tokens=self.output_tokens // queries,
            calls=max(1, self.calls // queries),
        )
