"""Test-Suite (TS) accuracy — distilled database variants.

Following Zhong et al. [31], EX's false positives (different queries,
same result on one lucky database) are caught by executing on a *suite*
of databases chosen to distinguish the gold query from plausible
near-miss mutants.  We fuzz each database into candidate variants,
score every candidate by how many (gold, mutant) pairs it separates,
and keep the top ``folds`` — a laptop-scale distillation of the paper's
100-fold suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.schema import Database, SQLiteExecutor
from repro.schema.model import Schema
from repro.sqlkit.ast_nodes import (
    Agg,
    Comparison,
    InExpr,
    Query,
    clone,
    walk,
)
from repro.sqlkit.errors import SQLError
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.render import render_sql
from repro.eval.execution import results_equal
from repro.utils.rng import derive_rng


@dataclass
class TestSuite:
    """A base database plus its distilled variants, ready to execute."""

    base: Database
    variants: list = field(default_factory=list)
    _executor: SQLiteExecutor = field(default_factory=SQLiteExecutor, repr=False)

    def __post_init__(self) -> None:
        self._executor.register(self.base, key="base")
        for i, variant in enumerate(self.variants):
            self._executor.register(variant, key=f"variant_{i}")

    def keys(self) -> list[str]:
        """Registry keys of the base database and all variants."""
        return ["base"] + [f"variant_{i}" for i in range(len(self.variants))]

    def match(self, gold_sql: str, predicted_sql: str) -> bool:
        """TS accuracy: the prediction must match gold on every database."""
        for key in self.keys():
            gold = self._executor.execute(key, gold_sql)
            if not gold.ok:
                continue  # a fuzzed variant may break a gold edge case
            pred = self._executor.execute(key, predicted_sql)
            if not pred.ok:
                return False
            ordered = _is_ordered(gold_sql)
            if not results_equal(gold, pred, ordered=ordered):
                return False
        return True

    def close(self) -> None:
        """Release the underlying SQLite resources."""
        self._executor.close()


def build_test_suite(
    database: Database,
    gold_sqls: list,
    folds: int = 8,
    seed: int = 0,
    candidate_factor: int = 3,
    max_gold: int = 20,
) -> TestSuite:
    """Build a distilled test suite for one database."""
    rng = derive_rng(seed, "test_suite", database.db_id)
    candidates = [
        fuzz_database(database, i, seed) for i in range(folds * candidate_factor)
    ]
    sample = list(gold_sqls[:max_gold])
    pairs = _distinguishing_pairs(sample)
    scored = _score_candidates(database, candidates, pairs)
    order = np.argsort([-s for s in scored], kind="stable")[:folds]
    chosen = [candidates[int(i)] for i in order]
    return TestSuite(base=database, variants=chosen)


def fuzz_database(database: Database, index: int, seed: int) -> Database:
    """Produce one fuzzed variant of a database.

    Row counts change by up to ±30%; non-key values are resampled from the
    original column's value pool (numerics occasionally perturbed); foreign
    keys resample from the new parent keys with a withheld subset so
    exclusion semantics stay exercised.
    """
    rng = derive_rng(seed, "fuzz", database.db_id, index)
    schema = database.schema
    fk_cols = {
        (fk.normalized()[0], fk.normalized()[1]): fk.normalized()[2]
        for fk in schema.foreign_keys
    }
    new_rows: dict[str, list[tuple]] = {}
    for table in _parents_first(schema):
        original = database.table_rows(table.name)
        if not original:
            new_rows[table.key] = []
            continue
        n = max(2, int(round(len(original) * float(rng.uniform(0.7, 1.3)))))
        pk = (table.primary_key or "").lower()
        columns = []
        for ci, col in enumerate(table.columns):
            pool = [r[ci] for r in original]
            if col.key == pk:
                columns.append(list(range(1, n + 1)))
            elif (table.key, col.key) in fk_cols:
                parent_key = fk_cols[(table.key, col.key)]
                parent_ids = [r[0] for r in new_rows.get(parent_key, [])]
                columns.append(_sample_fk(parent_ids, n, rng))
            else:
                columns.append(_sample_column(pool, n, col.col_type, rng))
        new_rows[table.key] = [tuple(col[i] for col in columns) for i in range(n)]
    return Database(schema=schema, rows=new_rows)


def _parents_first(schema: Schema):
    parent_names = {fk.normalized()[2] for fk in schema.foreign_keys}
    parents = [t for t in schema.tables if t.key in parent_names]
    children = [t for t in schema.tables if t.key not in parent_names]
    return parents + children


def _sample_fk(parent_ids: list, n: int, rng: np.random.Generator) -> list:
    if not parent_ids:
        return [None] * n
    usable = parent_ids
    if len(parent_ids) >= 4:
        withheld = set(
            rng.choice(parent_ids, size=len(parent_ids) // 4, replace=False).tolist()
        )
        usable = [p for p in parent_ids if p not in withheld] or parent_ids
    return [int(rng.choice(usable)) for _ in range(n)]


def _sample_column(pool: list, n: int, col_type: str, rng: np.random.Generator) -> list:
    values = [v for v in pool if v is not None] or [None]
    out = []
    for _ in range(n):
        value = values[int(rng.integers(0, len(values)))]
        if (
            col_type in ("integer", "real")
            and isinstance(value, (int, float))
            and rng.random() < 0.3
        ):
            delta = 1 + int(abs(value) * 0.1)
            value = value + int(rng.integers(-delta, delta + 1))
            if col_type == "integer":
                value = int(value)
        out.append(value)
    return out


# -- distillation ---------------------------------------------------------------


def generate_mutants(sql: str, limit: int = 6) -> list:
    """Plausible near-miss mutations of a gold query."""
    try:
        gold = parse_sql(sql)
    except SQLError:
        return []
    mutants: list[str] = []

    def add(query: Query) -> None:
        """Accumulate another usage record into this one."""
        text = render_sql(query)
        if text != sql and text not in mutants:
            mutants.append(text)

    flipped = clone(gold)
    flipped.core.distinct = not flipped.core.distinct
    add(flipped)

    comparison_ops = {">": ">=", ">=": ">", "<": "<=", "<=": "<", "=": "!="}
    count = 0
    for node in walk(gold):
        if isinstance(node, Comparison) and node.op in comparison_ops and count < 3:
            mutated = clone(gold)
            for twin in walk(mutated):
                if (
                    isinstance(twin, Comparison)
                    and twin.op == node.op
                    and render_sql(twin) == render_sql(node)
                ):
                    twin.op = comparison_ops[node.op]
                    break
            add(mutated)
            count += 1

    if gold.core.order_by:
        mutated = clone(gold)
        item = mutated.core.order_by[0]
        item.direction = "ASC" if item.direction == "DESC" else "DESC"
        add(mutated)

    if gold.core.limit is not None:
        mutated = clone(gold)
        mutated.core.limit = gold.core.limit + 1
        add(mutated)

    for node in walk(gold):
        if isinstance(node, Agg) and node.args:
            mutated = clone(gold)
            for twin in walk(mutated):
                if isinstance(twin, Agg) and render_sql(twin) == render_sql(node):
                    twin.distinct = not twin.distinct
                    break
            add(mutated)
            break

    return mutants[:limit]


def _distinguishing_pairs(gold_sqls: list) -> list:
    pairs = []
    for sql in gold_sqls:
        for mutant in generate_mutants(sql):
            pairs.append((sql, mutant))
    return pairs


def _score_candidates(database: Database, candidates: list, pairs: list) -> list:
    scores = []
    for candidate in candidates:
        with SQLiteExecutor() as executor:
            key = executor.register(candidate, key="cand")
            score = 0
            for gold_sql, mutant_sql in pairs:
                gold = executor.execute(key, gold_sql)
                mutant = executor.execute(key, mutant_sql)
                if not gold.ok:
                    continue
                if not mutant.ok or not results_equal(gold, mutant):
                    score += 1
            scores.append(score)
    return scores


def _is_ordered(sql: str) -> bool:
    try:
        query = parse_sql(sql)
    except SQLError:
        return False
    final = query.compounds[-1][1] if query.compounds else query.core
    return bool(final.order_by)
