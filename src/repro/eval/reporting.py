"""Render evaluation results as markdown / CSV / plain tables.

The benchmark suite prints paper-style tables; this module gives library
users the same rendering for their own experiment matrices:

    reports = {"purple": report_a, "dail": report_b}
    table = markdown_table(reports)
    save_csv(reports, "results.csv")

Nothing here writes to the console: functions return strings/dicts, and
the CLI routes them through :mod:`repro.obs.render` (the one module
allowed to ``print``).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional

from repro.eval.harness import HARDNESS_ORDER, EvaluationReport

_METRICS = ("em", "ex", "ts", "availability")


def performance_summary(report: EvaluationReport) -> dict:
    """Wall-clock profile of a run: throughput, latency, stage totals.

    Returns an empty dict for reports without timing (e.g. hand-built
    ones); stage keys appear in canonical pipeline order.
    """
    timing = report.timing
    if timing is None or not timing.tasks:
        return {}
    return {
        "workers": timing.workers,
        "tasks": len(timing.tasks),
        "wall_time_s": round(timing.wall_time, 4),
        "throughput_qps": round(timing.throughput(), 3),
        "latency_p50_s": round(timing.latency_percentile(50), 4),
        "latency_p95_s": round(timing.latency_percentile(95), 4),
        "stage_totals_s": {
            name: round(seconds, 4)
            for name, seconds in timing.stage_totals().items()
        },
    }


def telemetry_summary(report: EvaluationReport) -> dict:
    """The report's telemetry roll-up as a JSON-ready dict.

    Empty for unobserved runs — pass an ``observer`` to
    :func:`~repro.eval.harness.evaluate_approach` to populate it.
    """
    if report.telemetry is None:
        return {}
    return report.telemetry.as_dict()


def diagnostics_summary(report: EvaluationReport) -> dict:
    """Static-analysis roll-up: guard activity plus per-rule counts.

    Empty for unobserved runs, or observed runs where the analyzer never
    fired (guard off and no diagnosis-directed repairs).
    """
    telemetry = report.telemetry
    if telemetry is None:
        return {}
    if not (
        telemetry.guard_checked
        or telemetry.guard_skipped
        or telemetry.diagnostics
    ):
        return {}
    checked = telemetry.guard_checked
    summary = {
        "guard_checked": checked,
        "guard_skipped": telemetry.guard_skipped,
        "executions_avoided_rate": (
            round(telemetry.guard_skipped / checked, 4) if checked else 0.0
        ),
        "rules": dict(telemetry.diagnostics),
    }
    if telemetry.dialect_checked or telemetry.dialect_rejections:
        summary["dialect"] = {
            "name": report.dialect,
            "checked": telemetry.dialect_checked,
            "findings": telemetry.dialect_findings,
            "rejections": telemetry.dialect_rejections,
            "rules": {
                rule: count
                for rule, count in telemetry.diagnostics.items()
                if rule.startswith("dlct.")
            },
        }
    return summary


def performance_table(report: EvaluationReport) -> str:
    """Markdown rendering of :func:`performance_summary` (one run)."""
    summary = performance_summary(report)
    if not summary:
        return ""
    stages = summary.pop("stage_totals_s")
    headers = list(summary) + [f"stage:{name}" for name in stages]
    values = [str(v) for v in summary.values()] + [
        str(seconds) for seconds in stages.values()
    ]
    return "\n".join(
        [
            "| " + " | ".join(headers) + " |",
            "| " + " | ".join("---" for _ in headers) + " |",
            "| " + " | ".join(values) + " |",
        ]
    )


def summary_rows(
    reports: dict, include_ts: bool = False, include_resilience: bool = False
) -> list:
    """One row per report: name, EM, EX, (TS), tokens/query, n.

    With ``include_resilience`` the row also carries availability (share
    of tasks answered with LLM-derived SQL) and retries per query, so
    fault-injection benches report accuracy *and* availability.
    """
    rows = []
    for name, report in reports.items():
        row = {
            "approach": name,
            "em": round(report.em, 4),
            "ex": round(report.ex, 4),
        }
        if include_ts:
            row["ts"] = round(report.ts, 4)
        if include_resilience:
            row["availability"] = round(report.availability, 4)
            row["retries_per_query"] = round(report.retries_per_query(), 3)
            row["eval_errors"] = report.eval_errors
        row["tokens_per_query"] = report.tokens_per_query()
        row["queries"] = len(report)
        rows.append(row)
    return rows


def markdown_table(
    reports: dict, include_ts: bool = False, include_resilience: bool = False
) -> str:
    """A GitHub-flavoured markdown summary table."""
    rows = summary_rows(
        reports, include_ts=include_ts, include_resilience=include_resilience
    )
    if not rows:
        return ""
    headers = list(rows[0])
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        cells = []
        for header in headers:
            value = row[header]
            if header in _METRICS:
                cells.append(f"{100 * value:.1f}%")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def hardness_table(report: EvaluationReport, metric: str = "em") -> str:
    """Markdown breakdown of one report by hardness level."""
    buckets = report.by_hardness(metric)
    headers = [level for level in HARDNESS_ORDER if level in buckets]
    lines = [
        "| " + " | ".join([metric.upper(), *headers]) + " |",
        "| " + " | ".join("---" for _ in range(len(headers) + 1)) + " |",
        "| "
        + " | ".join(
            [report.approach, *(f"{100 * buckets[h]:.1f}%" for h in headers)]
        )
        + " |",
    ]
    return "\n".join(lines)


def to_csv(
    reports: dict, include_ts: bool = False, include_resilience: bool = False
) -> str:
    """CSV text with one row per report."""
    rows = summary_rows(
        reports, include_ts=include_ts, include_resilience=include_resilience
    )
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def save_csv(
    reports: dict,
    path,
    include_ts: bool = False,
    include_resilience: bool = False,
) -> None:
    """Write :func:`to_csv` output to a file."""
    Path(path).write_text(
        to_csv(
            reports,
            include_ts=include_ts,
            include_resilience=include_resilience,
        )
    )
