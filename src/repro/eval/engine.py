"""Deterministic worker-pool scheduler for evaluation runs.

:func:`map_ordered` applies a task function to every item, optionally on
a thread pool, and returns results **in item order** — a parallel run
produces exactly the sequence a serial run would, so reports stay
byte-identical across worker counts.  Around each call the engine scopes
the task's *lane* (see :mod:`repro.utils.context`), which task-scoped
fault policies and other per-task state key on, and installs a stage
collector so pipeline code instrumented with
:func:`repro.eval.timing.stage` attributes its wall time to the right
task.

Threads (not processes) are the right pool here: evaluation tasks spend
their time waiting on provider round-trips (simulated or real), which
release the GIL, while the Python-side work per task is small.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import nullcontext
from typing import Callable, Iterable, Optional, Sequence

from repro.eval.timing import TaskTiming, collect_stages
from repro.utils.context import task_lane


def map_ordered(
    fn: Callable,
    items: Sequence,
    *,
    workers: int = 1,
    lane_of: Optional[Callable] = None,
    observer=None,
) -> tuple:
    """Apply ``fn`` to each item; return ``(results, timings)`` in item order.

    ``workers <= 1`` runs serially on the calling thread — the reference
    schedule.  With more workers the items are dispatched to a thread
    pool and the results reassembled into submission order, so the two
    modes are indistinguishable from the outside.  ``lane_of(item)``
    names the task's lane (defaults to the item's position); an
    exception from ``fn`` propagates after the pool drains.

    ``observer`` (a :class:`repro.obs.Observer`) is activated *inside*
    each task — contextvars are per-thread, so installing it around the
    pool would leave worker threads unobserved — and opens the task's
    root span on its lane.
    """
    items = list(items)
    lanes = [
        str(i) if lane_of is None else lane_of(item)
        for i, item in enumerate(items)
    ]

    def run_one(index: int):
        """Run one item under its lane/observer; returns (value, timing)."""
        stages: dict = {}
        observed = (
            observer.task(lanes[index]) if observer is not None else nullcontext()
        )
        started = time.perf_counter()
        with task_lane(lanes[index]), collect_stages(stages), observed:
            value = fn(items[index])
        latency = time.perf_counter() - started
        return value, TaskTiming(ex_id=lanes[index], latency=latency, stages=stages)

    results: list = [None] * len(items)
    timings: list = [None] * len(items)
    if workers <= 1:
        for index in range(len(items)):
            results[index], timings[index] = run_one(index)
        return results, timings

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-eval"
    ) as pool:
        futures = {
            pool.submit(run_one, index): index for index in range(len(items))
        }
        for future in as_completed(futures):
            index = futures[future]
            results[index], timings[index] = future.result()
    return results, timings
