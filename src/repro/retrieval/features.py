"""Hashed bag-of-features embeddings over questions and skeletons.

The retrieval tier (docs/retrieval.md) needs a similarity signal with
zero dependencies and bit-reproducible output, so vectors here are
plain ``{dimension: weight}`` dicts produced by **feature hashing**:
every textual feature is digested with blake2b, the digest picks a
dimension (``h % dim``) and a sign (one digest bit), and collisions
cancel statistically instead of corrupting neighbours — the classic
hashing-trick construction, numpy-free.

Two feature families feed one vector, mirroring the two retrieval
signals PURPLE fuses:

* **question features** — lowercase word unigrams and adjacent bigrams
  of the NL question (the DAIL-SQL-style similarity signal);
* **skeleton features** — token trigrams (with ``^``/``$`` sentinels)
  plus unigrams of the detail-level skeleton sequence (the logical
  composition signal the automaton matches exactly).

Vectors are L2-normalized, so the dot product of two embeddings is
their cosine similarity.
"""

from __future__ import annotations

import hashlib
import math
import re

#: Default embedding width.  256 keeps sparse vectors ~40 entries for
#: typical question+skeleton pairs while keeping collisions rare.
DEFAULT_DIM = 256

_WORD = re.compile(r"[a-z0-9]+")


def question_tokens(question: str) -> list:
    """Lowercase word tokens of an NL question.

    :param question: the natural-language question text.
    :return: alphanumeric tokens, lowercased, in order.
    """
    return _WORD.findall(question.lower())


def question_features(question: str) -> list:
    """Hashable features of the question: word unigrams + bigrams.

    :param question: the natural-language question text.
    :return: feature strings, each namespaced with a ``q:``/``qb:``
        prefix so question and skeleton features never collide by text.
    """
    tokens = question_tokens(question)
    features = [f"q:{t}" for t in tokens]
    features.extend(
        f"qb:{a}\x1f{b}" for a, b in zip(tokens, tokens[1:])
    )
    return features


def skeleton_features(skeleton: tuple) -> list:
    """Hashable features of a detail-level skeleton token sequence.

    Trigrams over the sentinel-padded sequence capture local operator
    composition (the thing PURPLE's automaton matches exactly);
    unigrams keep isolated operators visible even when no trigram
    repeats across demonstrations.

    :param skeleton: skeleton tokens as produced by
        :func:`repro.sqlkit.skeleton.skeleton_tokens`.
    :return: feature strings namespaced with ``s:``/``s3:`` prefixes.
    """
    tokens = [str(t) for t in skeleton]
    features = [f"s:{t}" for t in tokens]
    padded = ["^"] + tokens + ["$"]
    features.extend(
        "s3:" + "\x1f".join(padded[i:i + 3])
        for i in range(len(padded) - 2)
    )
    return features


def hash_feature(feature: str, dim: int) -> tuple:
    """Map one feature to its hashed ``(dimension, sign)`` pair.

    blake2b keyed by the feature text alone — no per-process salt — so
    the same feature lands on the same signed dimension in every
    process forever (embeddings persisted by :mod:`repro.store` must
    match embeddings computed live).

    :param feature: namespaced feature string.
    :param dim: embedding width.
    :return: ``(dimension in [0, dim), sign in {-1.0, +1.0})``.
    """
    digest = hashlib.blake2b(
        feature.encode("utf-8"), digest_size=8
    ).digest()
    value = int.from_bytes(digest, "big")
    dimension = (value >> 1) % dim
    sign = 1.0 if value & 1 else -1.0
    return dimension, sign


def embed(question, skeleton, dim: int = DEFAULT_DIM) -> dict:
    """One L2-normalized sparse vector for a (question, skeleton) pair.

    Either side may be ``None``/empty — a skeleton-only embedding is
    still meaningful (and is what a pool built without questions would
    fall back to) — but at least one feature must survive for the
    vector to be non-empty.

    :param question: NL question text, or ``None``.
    :param skeleton: detail-level skeleton token sequence, or ``None``.
    :param dim: embedding width (hash modulus).
    :return: sparse ``{dimension: weight}`` dict with unit L2 norm;
        empty when no features were produced.
    """
    accumulated: dict = {}
    features = []
    if question:
        features.extend(question_features(question))
    if skeleton:
        features.extend(skeleton_features(tuple(skeleton)))
    for feature in features:
        dimension, sign = hash_feature(feature, dim)
        accumulated[dimension] = accumulated.get(dimension, 0.0) + sign
    # Signed collisions can cancel a dimension to exactly 0.0; drop it
    # so sparsity (and the serialized form) stays canonical.
    vector = {d: w for d, w in accumulated.items() if w != 0.0}
    norm = math.sqrt(sum(w * w for w in vector.values()))
    if norm == 0.0:
        return {}
    return {d: w / norm for d, w in vector.items()}


def cosine(a: dict, b: dict) -> float:
    """Dot product of two sparse vectors (cosine when both are unit).

    :param a: sparse vector.
    :param b: sparse vector.
    :return: the similarity; 0.0 when either vector is empty.
    """
    if len(b) < len(a):
        a, b = b, a
    return sum(w * b.get(d, 0.0) for d, w in a.items())
