"""Fused scoring: question/skeleton similarity × automaton match rank.

``retrieval=fused`` keeps the automaton's preferential matching order as
the backbone (it encodes PURPLE's logical-synthesis signal) but lets the
embedding similarity re-rank within it: each demonstration the automaton
would select gets the score ``similarity × 1 / (1 + rank)``, where
``rank`` is its position in the automaton's own selection order.  A
highly similar demonstration can therefore climb past a slightly
earlier, dissimilar one, while the harmonic rank weight stops pure
similarity from overturning the skeleton hierarchy wholesale — the
fusion the paper's comparison against DAIL-SQL motivates.
"""

from __future__ import annotations


def fused_score(similarity: float, rank: int) -> float:
    """The fused score of one selected demonstration.

    :param similarity: cosine similarity in roughly ``[-1, 1]``.
    :param rank: 0-based position in the automaton's selection order.
    :return: ``similarity * 1 / (1 + rank)``.
    """
    return similarity / (1.0 + rank)


def fused_order(demo_order, sims: dict) -> list:
    """Re-rank an automaton selection by fused score.

    The sort is stable on the original rank: equal fused scores keep
    the automaton's order, and demonstrations missing a similarity
    entry score as 0.0 similarity (they sink below any positively
    similar demo but stay mutually ordered).

    :param demo_order: demo indices in automaton selection order.
    :param sims: ``{demo_index: similarity}`` (e.g. from
        :meth:`repro.retrieval.EmbeddingIndex.similarities`).
    :return: the same indices re-ranked by fused score descending,
        ties broken by original rank ascending.
    """
    scored = [
        (-fused_score(sims.get(demo, 0.0), rank), rank, demo)
        for rank, demo in enumerate(demo_order)
    ]
    scored.sort()
    return [demo for _, _, demo in scored]
