"""The embedding index: multi-probe sign-LSH buckets over hashed vectors.

An :class:`EmbeddingIndex` holds one sparse embedding per demonstration
(:func:`repro.retrieval.features.embed` over the demo's question and
detail skeleton) and answers top-M similarity queries without scoring
the whole pool: every vector is assigned to one **coarse bucket** — the
sign pattern of its projections onto :data:`_PLANES` pseudo-random
hyperplanes, each plane's per-dimension signs derived from a blake2b
hash — and a query probes buckets in multi-probe order: its own sign
pattern first, then patterns reached by flipping the planes whose
projections sit closest to zero (the cheapest sign flips, i.e. the most
plausible hash collisions), scoring only the gathered candidates by
exact cosine.  A bounded sequential fallback guarantees a full result
even for adversarial queries, and everything (plane signs, probe order,
tie-breaks, the scan cap) is deterministic so selections built on top
stay byte-reproducible.

Incremental :meth:`add` is **exact**: vectors are independent and
buckets append in pool order, so adding demonstrations one at a time
produces the same index a full :meth:`build` over the extended pool
would — the same contract :class:`repro.store.DemoStore` keeps for the
automaton, and the property the store round-trip tests pin.
"""

from __future__ import annotations

from functools import lru_cache
from hashlib import blake2b
from typing import Optional

from repro.retrieval.features import DEFAULT_DIM, cosine, embed

#: Version of the embedding scheme baked into persisted vectors.  Bump
#: whenever :func:`repro.retrieval.features.embed` (tokenization,
#: hashing, normalization) changes behaviour — persisted retrieval
#: sections are then stale by construction.
RETRIEVAL_SCHEMA_VERSION = 1

#: Default number of coarse buckets probed per query.
DEFAULT_PROBES = 8

#: Gathered-candidate cap: probing stops once
#: ``max(_SCAN_CAP_FLOOR, multiplier * top_m)`` candidates are
#: gathered.  Exact cosine is the dominant query cost, so the cap is
#: what bounds latency when a near-duplicate cluster lands the query in
#: a huge bucket; 2× the requested size keeps enough slack for the
#: final cosine ranking to matter while staying linear in ``top_m``.
_SCAN_CAP_MULTIPLIER = 2
_SCAN_CAP_FLOOR = 256

#: Query dimensions kept by the pruned dot product that ranks
#: :meth:`EmbeddingIndex.candidates` — the hot-path stand-in for exact
#: cosine.
_PARTIAL_DIMS = 16


#: Sign-LSH hyperplanes; buckets are the 2**_PLANES sign patterns.
_PLANES = 8


@lru_cache(maxsize=None)
def _plane_signs(dimension: int) -> tuple:
    """The ±1 sign of one dimension on each LSH hyperplane.

    One blake2b byte yields all :data:`_PLANES` signs, so planes are a
    pure deterministic function of the dimension — identical across
    processes and platforms, which keeps persisted indexes and their
    re-derived buckets byte-reproducible.

    :param dimension: embedding dimension id.
    :return: tuple of ``_PLANES`` floats, each ``+1.0`` or ``-1.0``.
    """
    bits = blake2b(b"lsh:%d" % dimension, digest_size=1).digest()[0]
    return tuple(
        1.0 if bits >> plane & 1 else -1.0 for plane in range(_PLANES)
    )


def _projections(vector: dict) -> list:
    """Project a sparse vector onto every LSH hyperplane.

    :param vector: sparse embedding.
    :return: list of ``_PLANES`` signed projection values.
    """
    projections = [0.0] * _PLANES
    for dimension, weight in vector.items():
        signs = _plane_signs(dimension)
        for plane in range(_PLANES):
            projections[plane] += weight * signs[plane]
    return projections


def _bucket_of(vector: dict) -> Optional[int]:
    """The coarse bucket of one vector: its projection sign pattern.

    Bit ``j`` of the bucket id is set when the vector's projection onto
    plane ``j`` is non-negative — a pure function of the vector, so
    buckets re-derived on load match the ones built incrementally.

    :param vector: sparse embedding.
    :return: bucket id in ``[0, 2**_PLANES)``, or ``None`` for an
        empty vector.
    """
    if not vector:
        return None
    bucket = 0
    for plane, projection in enumerate(_projections(vector)):
        if projection >= 0:
            bucket |= 1 << plane
    return bucket


def _probe_order(projections: list) -> list:
    """Every bucket id, cheapest sign flips first (multi-probe LSH).

    Flipping plane ``j`` away from the query's own sign pattern costs
    ``|projections[j]|`` — how far the query sits from that hyperplane.
    Buckets are visited in increasing total flip cost (ties toward the
    smaller flip mask), starting with the query's own bucket at cost 0.

    :param projections: the query vector's plane projections.
    :return: all ``2**_PLANES`` bucket ids in probe order.
    """
    base = 0
    for plane, projection in enumerate(projections):
        if projection >= 0:
            base |= 1 << plane
    costs = [0.0] * (1 << _PLANES)
    for mask in range(1, 1 << _PLANES):
        low = mask & -mask
        costs[mask] = costs[mask ^ low] + abs(
            projections[low.bit_length() - 1]
        )
    order = sorted(range(1 << _PLANES), key=lambda m: (costs[m], m))
    return [base ^ mask for mask in order]


class EmbeddingIndex:
    """Similarity search over one demonstration pool's embeddings."""

    def __init__(self, dim: int = DEFAULT_DIM, probes: int = DEFAULT_PROBES):
        if dim <= 0:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        if probes <= 0:
            raise ValueError(f"probe count must be positive, got {probes}")
        self.dim = dim
        self.probes = probes
        self._vectors: list = []        # pool index -> sparse vector
        self._buckets: dict = {}        # bucket dim -> [pool index, ...]

    def __len__(self) -> int:
        return len(self._vectors)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, pairs, dim: int = DEFAULT_DIM,
              probes: int = DEFAULT_PROBES) -> "EmbeddingIndex":
        """Index a pool of ``(question, skeleton_tokens)`` pairs.

        :param pairs: iterable of ``(question, skeleton)`` in pool
            order; the position of each pair becomes its demo index.
        :param dim: embedding width.
        :param probes: coarse buckets probed per query.
        :return: the populated index.
        """
        index = cls(dim=dim, probes=probes)
        for question, skeleton in pairs:
            index.add(question, skeleton)
        return index

    def add(self, question, skeleton) -> int:
        """Append one demonstration's embedding — equals a full rebuild.

        :param question: the demonstration's NL question (or ``None``).
        :param skeleton: its detail-level skeleton token sequence.
        :return: the new demonstration's pool index.
        """
        vector = embed(question, skeleton, dim=self.dim)
        demo_index = len(self._vectors)
        self._vectors.append(vector)
        bucket = _bucket_of(vector)
        if bucket is not None:
            self._buckets.setdefault(bucket, []).append(demo_index)
        return demo_index

    # -- queries -----------------------------------------------------------

    def query(self, question, skeleton, top_m: int) -> list:
        """Top-M most similar demonstrations for a query pair.

        Probes coarse buckets in multi-probe order — the query's own
        sign pattern first, then patterns in increasing sign-flip cost —
        widening past ``probes`` buckets only while fewer than ``top_m``
        candidates have been gathered, and capping the total gathered
        candidates so skewed buckets cannot make a query scan the pool.
        When even every bucket yields fewer than ``top_m`` candidates,
        the remaining vectors are scanned in pool order until the
        shortfall is covered — a deterministic last-resort that keeps
        the result set full.

        :param question: the task's NL question.
        :param skeleton: the top predicted skeleton's token sequence.
        :param top_m: how many demonstrations to return.
        :return: ``[(demo_index, similarity), ...]`` sorted by
            similarity descending, ties toward the lower index; at most
            ``top_m`` entries (fewer only when the pool is smaller).
        """
        if top_m <= 0 or not self._vectors:
            return []
        query_vector = embed(question, skeleton, dim=self.dim)
        scan_cap = max(_SCAN_CAP_FLOOR, _SCAN_CAP_MULTIPLIER * top_m)
        gathered = self._gather(query_vector, top_m, scan_cap)
        scored = [
            (demo_index, cosine(query_vector, self._vectors[demo_index]))
            for demo_index in gathered
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_m]

    def candidates(self, question, skeleton, top_m: int) -> list:
        """A candidate set for the selection pre-filter (hot path).

        Two cheap tiers: multi-probe LSH gathers ``2 × top_m``
        candidates, then a pruned dot product over the query's
        :data:`_PARTIAL_DIMS` heaviest dimensions ranks them and keeps
        ``top_m``.  The pruned score tracks exact cosine closely (the
        vectors are L2-normalized, so heavy dimensions dominate the
        dot) at a fraction of its cost — right for the pre-filter,
        where only set membership matters and final ordering is
        Algorithm 1's job.  Use :meth:`query` when exact scores are
        needed.

        :param question: the task's NL question.
        :param skeleton: the top predicted skeleton's token sequence.
        :return: up to ``top_m`` demo indices, pruned-score descending
            (ties toward the lower index; fewer entries only when the
            pool is smaller).
        """
        if top_m <= 0 or not self._vectors:
            return []
        query_vector = embed(question, skeleton, dim=self.dim)
        gathered = self._gather(query_vector, top_m, 2 * top_m)
        heavy = sorted(
            query_vector.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )[:_PARTIAL_DIMS]
        scored = []
        for demo_index in gathered:
            vector = self._vectors[demo_index]
            score = 0.0
            for dimension, weight in heavy:
                other = vector.get(dimension)
                if other is not None:
                    score += weight * other
            scored.append((-score, demo_index))
        scored.sort()
        return [demo_index for _, demo_index in scored[:top_m]]

    def _gather(self, query_vector: dict, top_m: int, scan_cap: int) -> list:
        """Multi-probe bucket gathering shared by query/candidates.

        :param query_vector: the embedded query.
        :param top_m: minimum candidates to aim for before stopping.
        :param scan_cap: hard cap on gathered candidates.
        :return: gathered demo indices in probe order.
        """
        gathered: list = []
        seen: set = set()

        def _drain(indices) -> bool:
            for demo_index in indices:
                if demo_index in seen:
                    continue
                seen.add(demo_index)
                gathered.append(demo_index)
                if len(gathered) >= scan_cap:
                    return True
            return False

        probed = 0
        for bucket in _probe_order(_projections(query_vector)):
            if probed >= self.probes and len(gathered) >= top_m:
                break
            indices = self._buckets.get(bucket)
            if not indices:
                continue
            probed += 1
            if _drain(indices):
                break
        if len(gathered) < top_m and len(seen) < len(self._vectors):
            # Sequential fallback in pool order, bounded by the shortfall.
            needed = top_m - len(gathered)
            for demo_index in range(len(self._vectors)):
                if demo_index in seen:
                    continue
                seen.add(demo_index)
                gathered.append(demo_index)
                needed -= 1
                if needed <= 0:
                    break
        return gathered

    def similarities(self, question, skeleton, indices) -> dict:
        """Exact cosine similarities for specific demonstrations.

        :param question: the task's NL question.
        :param skeleton: the top predicted skeleton's token sequence.
        :param indices: demo indices to score (out-of-range ignored).
        :return: ``{demo_index: similarity}`` for every valid index.
        """
        query_vector = embed(question, skeleton, dim=self.dim)
        return {
            i: cosine(query_vector, self._vectors[i])
            for i in indices
            if 0 <= i < len(self._vectors)
        }

    # -- persistence (the store's retrieval section) -----------------------

    def as_payload(self) -> dict:
        """JSON form for the store container's ``retrieval`` section.

        Vectors serialize as sorted ``[dimension, weight]`` pairs so
        the payload is canonical; buckets are not stored — they are a
        pure function of the vectors and are re-derived on load.
        """
        return {
            "dim": self.dim,
            "probes": self.probes,
            "vectors": [
                [[d, vector[d]] for d in sorted(vector)]
                for vector in self._vectors
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EmbeddingIndex":
        """Reconstruct from :meth:`as_payload` output.

        :param payload: the ``retrieval`` section of a store payload.
        :return: an index equal to the one serialized (same vectors,
            same buckets, same query results).
        """
        index = cls(
            dim=int(payload["dim"]), probes=int(payload["probes"])
        )
        for pairs in payload["vectors"]:
            vector = {int(d): float(w) for d, w in pairs}
            demo_index = len(index._vectors)
            index._vectors.append(vector)
            bucket = _bucket_of(vector)
            if bucket is not None:
                index._buckets.setdefault(bucket, []).append(demo_index)
        return index

    def vector(self, demo_index: int) -> dict:
        """The stored sparse vector for one demonstration (a copy).

        :param demo_index: pool position of the demonstration.
        :return: its sparse embedding.
        """
        return dict(self._vectors[demo_index])

    def bucket_sizes(self) -> dict:
        """Occupancy per coarse bucket (diagnostics/telemetry)."""
        return {d: len(ids) for d, ids in sorted(self._buckets.items())}
