"""Zero-dependency retrieval tier: hashed embeddings + coarse buckets.

See docs/retrieval.md for the full design.  Public surface:

* :func:`repro.retrieval.features.embed` and friends — hashed
  bag-of-features sparse vectors over questions and skeletons;
* :class:`EmbeddingIndex` — IVF-style bucketed similarity search with
  exact incremental ``add()`` parity, persisted by :mod:`repro.store`;
* :func:`fused_order` — similarity × automaton-rank re-ranking used by
  ``retrieval=fused``.
"""

from repro.retrieval.features import (
    DEFAULT_DIM,
    cosine,
    embed,
    hash_feature,
    question_features,
    question_tokens,
    skeleton_features,
)
from repro.retrieval.fuse import fused_order, fused_score
from repro.retrieval.index import (
    DEFAULT_PROBES,
    RETRIEVAL_SCHEMA_VERSION,
    EmbeddingIndex,
)

__all__ = [
    "DEFAULT_DIM",
    "DEFAULT_PROBES",
    "RETRIEVAL_SCHEMA_VERSION",
    "EmbeddingIndex",
    "cosine",
    "embed",
    "fused_order",
    "fused_score",
    "hash_feature",
    "question_features",
    "question_tokens",
    "skeleton_features",
]
