"""Content-hash scheme for demonstration pools.

The pool hash is a *chained* digest: ``H_0`` is a fixed namespace seed
and ``H_n = blake2b(H_{n-1} || blake2b(sql_n))``.  Chaining (rather than
hashing the concatenated pool) makes the hash order-sensitive — demo
*indices* are part of the store contract — and lets an incremental
``add()`` extend the manifest hash in O(1) from the previous value
without re-reading the whole pool.

``config_digest`` canonicalizes a build-config dict (sorted-key JSON)
so manifests built with different knobs never collide.
"""

from __future__ import annotations

import hashlib
import json

_DIGEST_SIZE = 16

#: H_0 — the namespace seed every pool hash chain starts from.
EMPTY_POOL_HASH = hashlib.blake2b(
    b"purple-demo-pool-v1", digest_size=_DIGEST_SIZE
).hexdigest()


def sql_digest(sql: str) -> str:
    """Content digest of one demonstration's SQL text."""
    return hashlib.blake2b(
        sql.encode("utf-8"), digest_size=_DIGEST_SIZE
    ).hexdigest()


def extend_pool_hash(previous_hex: str, sql: str) -> str:
    """One chain step: fold the next demonstration into the pool hash."""
    return hashlib.blake2b(
        bytes.fromhex(previous_hex) + bytes.fromhex(sql_digest(sql)),
        digest_size=_DIGEST_SIZE,
    ).hexdigest()


def pool_hash(demo_sqls) -> str:
    """Chained content hash of an ordered demonstration pool."""
    digest = EMPTY_POOL_HASH
    for sql in demo_sqls:
        digest = extend_pool_hash(digest, sql)
    return digest


def config_digest(build_config: dict) -> str:
    """Canonical digest of the build configuration dict."""
    canonical = json.dumps(build_config, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=_DIGEST_SIZE
    ).hexdigest()
