"""``repro.store`` — the persistent, versioned demonstration store.

PURPLE's retrieval accuracy comes from the four-level skeleton automaton
over the demonstration pool (§IV-C); this package makes that index a
**precomputed asset** instead of a per-run computation.  An offline
build (``repro index build``) parses every pool demonstration once and
serializes the skeleton sequences plus hardness/token-cost metadata into
a compact single-file container; the pipeline then warm-starts by
loading it — no SQL parsing — and shares one read-only copy across all
workers in the process.  Staleness is detected by content hash, and a
strict offline mode turns "stale" into an error instead of a rebuild.

See ``docs/demo-store.md`` for the file format, the hash scheme, and
the CLI workflow.
"""

from repro.store.cache import clear_shared_stores, shared_store
from repro.store.format import (
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    CorruptStoreError,
    StaleStoreError,
    StoreError,
    StoreVersionError,
    read_manifest,
)
from repro.store.hashing import pool_hash
from repro.store.store import (
    SKELETON_SCHEMA_VERSION,
    DemoRecord,
    DemoStore,
    StoreManifest,
)

__all__ = [
    "DemoStore",
    "DemoRecord",
    "StoreManifest",
    "StoreError",
    "CorruptStoreError",
    "StaleStoreError",
    "StoreVersionError",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "SKELETON_SCHEMA_VERSION",
    "pool_hash",
    "read_manifest",
    "shared_store",
    "clear_shared_stores",
]
