"""The on-disk container for demonstration stores.

One store is one file::

    ┌──────────┬───────────┬───────────────┬───────────┬──────────────────┬───────┐
    │ magic 8B │ u32 mlen  │ manifest JSON │ u32 plen  │ payload (zlib)   │ crc32 │
    └──────────┴───────────┴───────────────┴───────────┴──────────────────┴───────┘

The manifest is small uncompressed JSON so :func:`read_manifest` can
answer "is this store fresh?" by reading a few hundred bytes; the
payload (demonstration records) is zlib-compressed JSON guarded by a
trailing CRC-32.  Readers map the file into memory (:mod:`mmap`) so a
store shared by many workers occupies one page-cache copy.

All integers are big-endian.  :exc:`CorruptStoreError` covers truncated
files, bad magic, and checksum mismatches; :exc:`StoreVersionError`
covers containers written by a future format revision.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from pathlib import Path

#: First 8 bytes of every store file.
MAGIC = b"PRPLDEM\x01"

#: Container layout revision (bump on any byte-layout change).  v2
#: added the optional ``retrieval`` payload section and manifest block
#: (docs/retrieval.md); the byte layout is unchanged, so v1 files stay
#: readable.
FORMAT_VERSION = 2

#: Every format version this build can read.  Writers always emit
#: :data:`FORMAT_VERSION`; v1 containers (no retrieval section) load as
#: stores without an embedding index.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

_U32 = struct.Struct(">I")


class StoreError(Exception):
    """Base class for every demonstration-store failure."""


class CorruptStoreError(StoreError):
    """The file is not a store, is truncated, or fails its checksum."""


class StoreVersionError(StoreError):
    """The store was written by an incompatible format or schema version."""


class StaleStoreError(StoreError):
    """The store does not match the live pool and rebuilds are forbidden."""


def write_store(path, manifest: dict, payload: dict) -> int:
    """Serialize ``manifest`` + ``payload`` to ``path``; return byte size.

    The write goes through a same-directory temporary file followed by
    :func:`os.replace`, so readers never observe a half-written store.
    """
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    payload_bytes = zlib.compress(
        json.dumps(payload, sort_keys=True).encode("utf-8"), level=6
    )
    blob = b"".join([
        MAGIC,
        _U32.pack(len(manifest_bytes)),
        manifest_bytes,
        _U32.pack(len(payload_bytes)),
        payload_bytes,
        _U32.pack(zlib.crc32(payload_bytes) & 0xFFFFFFFF),
    ])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


def _slice(view, start: int, length: int, what: str) -> bytes:
    if start + length > len(view):
        raise CorruptStoreError(
            f"truncated store: {what} needs {length} bytes at offset {start}, "
            f"file has {len(view)}"
        )
    return bytes(view[start:start + length])


def _parse_header(view) -> tuple:
    """Return ``(manifest, payload_offset, payload_length)`` from a buffer."""
    if _slice(view, 0, len(MAGIC), "magic") != MAGIC:
        raise CorruptStoreError("bad magic: not a demonstration store")
    offset = len(MAGIC)
    (mlen,) = _U32.unpack(_slice(view, offset, 4, "manifest length"))
    offset += 4
    try:
        manifest = json.loads(_slice(view, offset, mlen, "manifest"))
    except json.JSONDecodeError as exc:
        raise CorruptStoreError(f"manifest is not valid JSON: {exc}") from exc
    offset += mlen
    (plen,) = _U32.unpack(_slice(view, offset, 4, "payload length"))
    offset += 4
    if manifest.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise StoreVersionError(
            f"store format_version {manifest.get('format_version')!r}; "
            f"this build reads versions {SUPPORTED_FORMAT_VERSIONS}"
        )
    return manifest, offset, plen


def read_manifest(path) -> dict:
    """Read only the manifest — the cheap freshness/identity probe."""
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC) + 4)
        if len(head) < len(MAGIC) + 4:
            raise CorruptStoreError("truncated store: header incomplete")
        if head[:len(MAGIC)] != MAGIC:
            raise CorruptStoreError("bad magic: not a demonstration store")
        (mlen,) = _U32.unpack(head[len(MAGIC):])
        manifest_bytes = fh.read(mlen)
    if len(manifest_bytes) < mlen:
        raise CorruptStoreError("truncated store: manifest incomplete")
    try:
        manifest = json.loads(manifest_bytes)
    except json.JSONDecodeError as exc:
        raise CorruptStoreError(f"manifest is not valid JSON: {exc}") from exc
    if manifest.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise StoreVersionError(
            f"store format_version {manifest.get('format_version')!r}; "
            f"this build reads versions {SUPPORTED_FORMAT_VERSIONS}"
        )
    return manifest


def read_store(path) -> tuple:
    """Read ``(manifest, payload)`` from ``path`` via a read-only mmap."""
    with open(path, "rb") as fh:
        size = os.fstat(fh.fileno()).st_size
        if size == 0:
            raise CorruptStoreError("empty store file")
        with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as view:
            manifest, offset, plen = _parse_header(view)
            compressed = _slice(view, offset, plen, "payload")
            (crc,) = _U32.unpack(
                _slice(view, offset + plen, 4, "payload checksum")
            )
    if zlib.crc32(compressed) & 0xFFFFFFFF != crc:
        raise CorruptStoreError("payload checksum mismatch")
    try:
        payload = json.loads(zlib.decompress(compressed))
    except (zlib.error, json.JSONDecodeError) as exc:
        raise CorruptStoreError(f"payload does not decode: {exc}") from exc
    return manifest, payload
