"""The persistent demonstration store.

A :class:`DemoStore` is the retrieval index of §IV-C turned into a
precomputed, versioned asset.  An offline build parses each pool
demonstration **once**, records its detail-level skeleton plus hardness
and token-cost metadata, and persists everything in the single-file
container of :mod:`repro.store.format`.  Loading reconstructs the four
:class:`~repro.core.automaton.LevelAutomaton`\\ s from the stored
skeletons without touching the SQL parser, which is what makes the warm
path fast.

Identity and staleness are decided by the manifest: a chained
content hash over the ordered pool (:mod:`repro.store.hashing`), the
skeleton schema version, and a digest of the build configuration.
:meth:`DemoStore.open` compares all three against the live pool and
either reuses, rebuilds, or — in offline/strict mode — refuses.

Every build/load/probe is instrumented through :mod:`repro.obs`:
``index.build_ms`` / ``index.load_ms`` histograms, ``index.builds`` /
``index.loads`` / ``index.cache_hit`` / ``index.rebuilds`` counters,
per-level ``index.states`` gauges, and an ``index.build`` or
``index.load`` span when an observer is active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.automaton import AutomatonIndex
from repro.llm.tokenizer import count_tokens
from repro.obs import runtime as obs
from repro.sqlkit.abstraction import abstract_tokens
from repro.sqlkit.hardness import classify_hardness
from repro.sqlkit.skeleton import skeleton_tokens
from repro.store.format import (
    FORMAT_VERSION,
    CorruptStoreError,
    StaleStoreError,
    StoreVersionError,
    read_manifest,
    read_store,
    write_store,
)
from repro.store.hashing import (
    EMPTY_POOL_HASH,
    config_digest,
    extend_pool_hash,
    pool_hash,
)

#: Version of the skeletonization/abstraction scheme baked into stored
#: sequences.  Bump whenever :func:`repro.sqlkit.skeleton.skeleton_tokens`
#: or :func:`repro.sqlkit.abstraction.abstract_tokens` change behaviour —
#: stores from an older scheme are then stale by construction.
SKELETON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DemoRecord:
    """One demonstration's precomputed artifacts.

    ``hardness`` and ``token_cost`` ride along so downstream consumers
    (budgeted prompting, hardness-bucketed reporting) never re-derive
    them from raw SQL.
    """

    sql: str
    skeleton: tuple
    hardness: str
    token_cost: int

    def as_row(self) -> list:
        """Compact JSON row form: ``[sql, [tokens...], hardness, cost]``."""
        return [self.sql, list(self.skeleton), self.hardness, self.token_cost]

    @staticmethod
    def from_row(row: list) -> "DemoRecord":
        """Reconstruct from :meth:`as_row` output."""
        sql, tokens, hardness, cost = row
        return DemoRecord(
            sql=sql, skeleton=tuple(tokens), hardness=hardness, token_cost=cost
        )


@dataclass
class StoreManifest:
    """Identity and provenance of one persisted store."""

    pool_hash: str
    pool_size: int
    build_config: dict = field(default_factory=dict)
    config_hash: str = ""
    schema_version: int = SKELETON_SCHEMA_VERSION
    format_version: int = FORMAT_VERSION
    state_counts: dict = field(default_factory=dict)  # level(str) -> count

    def __post_init__(self):
        if not self.config_hash:
            self.config_hash = config_digest(self.build_config)

    def as_dict(self) -> dict:
        """JSON form written into the container header."""
        return {
            "format_version": self.format_version,
            "schema_version": self.schema_version,
            "pool_hash": self.pool_hash,
            "pool_size": self.pool_size,
            "build_config": dict(self.build_config),
            "config_hash": self.config_hash,
            "state_counts": {str(k): v for k, v in self.state_counts.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> "StoreManifest":
        """Reconstruct from :meth:`as_dict` output."""
        return StoreManifest(
            pool_hash=data["pool_hash"],
            pool_size=data["pool_size"],
            build_config=dict(data.get("build_config", {})),
            config_hash=data.get("config_hash", ""),
            schema_version=data.get("schema_version", 0),
            format_version=data.get("format_version", 0),
            state_counts=dict(data.get("state_counts", {})),
        )


def _record_for(sql: str) -> DemoRecord:
    tokens = tuple(skeleton_tokens(sql))
    return DemoRecord(
        sql=sql,
        skeleton=tokens,
        hardness=str(classify_hardness(sql)),
        token_cost=count_tokens(sql),
    )


@dataclass
class DemoStore:
    """An indexed demonstration pool with a persistent on-disk form."""

    manifest: StoreManifest
    index: AutomatonIndex
    demos: list = field(default_factory=list)  # list[DemoRecord]
    path: Optional[Path] = None

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build(demo_sqls, build_config: Optional[dict] = None) -> "DemoStore":
        """Index a pool from raw SQL — the offline/cold build.

        Each demonstration is parsed exactly once; its detail skeleton,
        hardness class, and token cost are precomputed here so neither
        the warm load nor any later consumer re-parses the pool.

        :param demo_sqls: gold SQL strings in pool order.
        :param build_config: free-form dict folded into the manifest
            identity (e.g. the abstraction settings a deployment pins).
        :return: the built, not-yet-saved store.
        """
        started = time.perf_counter()
        with obs.span("index.build"):
            demos = [_record_for(sql) for sql in demo_sqls]
            index = AutomatonIndex.from_skeletons(d.skeleton for d in demos)
            manifest = StoreManifest(
                pool_hash=pool_hash(d.sql for d in demos),
                pool_size=len(demos),
                build_config=dict(build_config or {}),
                state_counts=index.end_state_counts(),
            )
            store = DemoStore(manifest=manifest, index=index, demos=demos)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.count("index.builds")
        obs.observe("index.build_ms", elapsed_ms)
        _publish_state_gauges(manifest)
        return store

    def add(self, sql: str) -> int:
        """Incrementally append one demonstration — equals a full rebuild.

        Parses only the new SQL, feeds all four level automatons, and
        extends the manifest's chained pool hash in O(1).  The
        in-memory result (and a subsequent :meth:`save`) is identical
        to rebuilding the store from the extended pool.

        :param sql: the appended demonstration's gold SQL.
        :return: the new demonstration's pool index.
        """
        record = _record_for(sql)
        demo_index = len(self.demos)
        self.demos.append(record)
        for lvl in (1, 2, 3, 4):
            self.index.levels[lvl].add(
                abstract_tokens(list(record.skeleton), lvl), demo_index
            )
        self.manifest.pool_hash = extend_pool_hash(
            self.manifest.pool_hash, sql
        )
        self.manifest.pool_size = len(self.demos)
        self.manifest.state_counts = self.index.end_state_counts()
        return demo_index

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> Path:
        """Serialize to the single-file container; returns the path."""
        path = Path(path)
        write_store(
            path,
            self.manifest.as_dict(),
            {"demos": [d.as_row() for d in self.demos]},
        )
        self.path = path
        return path

    @staticmethod
    def load(path) -> "DemoStore":
        """Load a persisted store — the warm path, no SQL parsing.

        The four level automatons are reconstructed from the stored
        detail skeletons (token-list abstraction and trie insertion
        only), so loading is independent of SQL text complexity.

        :param path: a file written by :meth:`save`.
        :return: the loaded store.
        :raises CorruptStoreError: truncated/garbled file or bad checksum.
        :raises StoreVersionError: incompatible container or skeleton
            schema version.
        """
        started = time.perf_counter()
        with obs.span("index.load", path=str(path)):
            manifest_dict, payload = read_store(path)
            manifest = StoreManifest.from_dict(manifest_dict)
            if manifest.schema_version != SKELETON_SCHEMA_VERSION:
                raise StoreVersionError(
                    f"store skeleton schema v{manifest.schema_version}; "
                    f"this build uses v{SKELETON_SCHEMA_VERSION}"
                )
            demos = [DemoRecord.from_row(row) for row in payload["demos"]]
            if len(demos) != manifest.pool_size:
                raise CorruptStoreError(
                    f"manifest says {manifest.pool_size} demos, payload "
                    f"has {len(demos)}"
                )
            index = AutomatonIndex.from_skeletons(d.skeleton for d in demos)
            store = DemoStore(
                manifest=manifest, index=index, demos=demos, path=Path(path)
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.count("index.loads")
        obs.observe("index.load_ms", elapsed_ms)
        _publish_state_gauges(manifest)
        return store

    # -- warm start ------------------------------------------------------------

    @staticmethod
    def open(
        path,
        demo_sqls,
        build_config: Optional[dict] = None,
        offline: bool = False,
    ) -> "DemoStore":
        """Open a store for a live pool, with staleness detection.

        The decision table:

        * file missing → build from ``demo_sqls`` and save (offline
          mode raises :exc:`StaleStoreError` instead);
        * manifest pool-hash/config/schema mismatch, or a corrupt file
          → rebuild and overwrite (offline mode raises);
        * manifest matches → load and reuse (``index.cache_hit``).

        :param path: where the store lives (created when absent).
        :param demo_sqls: the live pool the index must correspond to.
        :param build_config: identity-bearing build settings.
        :param offline: strict mode — never build, error on any
            mismatch; for deployments where index builds are a
            controlled offline step.
        :return: a fresh store for exactly ``demo_sqls``.
        """
        path = Path(path)
        demo_sqls = list(demo_sqls)
        expected_hash = pool_hash(demo_sqls)
        expected_config = config_digest(dict(build_config or {}))

        def _rebuild(reason: str) -> "DemoStore":
            if offline:
                raise StaleStoreError(
                    f"offline index mode: store at {path} is unusable "
                    f"({reason}) and rebuilds are disabled"
                )
            obs.count("index.rebuilds")
            obs.event("index.rebuild", reason=reason, path=str(path))
            store = DemoStore.build(demo_sqls, build_config=build_config)
            store.save(path)
            return store

        if not path.exists():
            return _rebuild("store file missing")
        try:
            manifest = StoreManifest.from_dict(read_manifest(path))
        except (CorruptStoreError, StoreVersionError) as exc:
            return _rebuild(f"unreadable manifest: {exc}")
        if manifest.schema_version != SKELETON_SCHEMA_VERSION:
            return _rebuild(
                f"skeleton schema v{manifest.schema_version} != "
                f"v{SKELETON_SCHEMA_VERSION}"
            )
        if manifest.pool_hash != expected_hash:
            return _rebuild("pool content hash mismatch")
        if manifest.config_hash != expected_config:
            return _rebuild("build config mismatch")
        try:
            store = DemoStore.load(path)
        except (CorruptStoreError, StoreVersionError) as exc:
            return _rebuild(f"corrupt payload: {exc}")
        obs.count("index.cache_hit")
        return store

    # -- verification ----------------------------------------------------------

    def verify_against(self, demo_sqls) -> list:
        """Mismatches between this store and a live pool (empty = fresh)."""
        problems = []
        live = list(demo_sqls)
        expected = pool_hash(live)
        if self.manifest.pool_hash != expected:
            problems.append(
                f"pool hash mismatch: store {self.manifest.pool_hash}, "
                f"live pool {expected}"
            )
        if self.manifest.pool_size != len(live):
            problems.append(
                f"pool size mismatch: store {self.manifest.pool_size}, "
                f"live pool {len(live)}"
            )
        return problems

    def self_check(self, deep: bool = False) -> list:
        """Internal-consistency problems (empty = healthy).

        Always recomputes the chained pool hash from the embedded SQL
        and the per-level state counts.  ``deep=True`` additionally
        re-parses every embedded SQL and compares the stored skeletons
        against a fresh :func:`skeleton_tokens` run — the full
        schema-drift check.
        """
        problems = []
        recomputed = EMPTY_POOL_HASH
        for record in self.demos:
            recomputed = extend_pool_hash(recomputed, record.sql)
        if recomputed != self.manifest.pool_hash:
            problems.append(
                f"embedded SQL does not reproduce the manifest pool hash "
                f"({recomputed} != {self.manifest.pool_hash})"
            )
        counts = {
            str(k): v for k, v in self.index.end_state_counts().items()
        }
        manifest_counts = {
            str(k): v for k, v in self.manifest.state_counts.items()
        }
        if counts != manifest_counts:
            problems.append(
                f"state counts diverge: index {counts}, "
                f"manifest {manifest_counts}"
            )
        if deep:
            for i, record in enumerate(self.demos):
                fresh = tuple(skeleton_tokens(record.sql))
                if fresh != record.skeleton:
                    problems.append(
                        f"demo {i}: stored skeleton diverges from the "
                        f"current skeletonizer (schema drift?)"
                    )
        return problems


def _publish_state_gauges(manifest: StoreManifest) -> None:
    for level, states in sorted(manifest.state_counts.items()):
        obs.gauge("index.states", states, level=str(level))
