"""The persistent demonstration store.

A :class:`DemoStore` is the retrieval index of §IV-C turned into a
precomputed, versioned asset.  An offline build parses each pool
demonstration **once**, records its detail-level skeleton plus hardness
and token-cost metadata, and persists everything in the single-file
container of :mod:`repro.store.format`.  Loading reconstructs the four
:class:`~repro.core.automaton.LevelAutomaton`\\ s from the stored
skeletons without touching the SQL parser, which is what makes the warm
path fast.

Identity and staleness are decided by the manifest: a chained
content hash over the ordered pool (:mod:`repro.store.hashing`), the
skeleton schema version, and a digest of the build configuration.
:meth:`DemoStore.open` compares all three against the live pool and
either reuses, rebuilds, or — in offline/strict mode — refuses.

Every build/load/probe is instrumented through :mod:`repro.obs`:
``index.build_ms`` / ``index.load_ms`` histograms, ``index.builds`` /
``index.loads`` / ``index.cache_hit`` / ``index.rebuilds`` counters,
per-level ``index.states`` gauges, and an ``index.build`` or
``index.load`` span when an observer is active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.automaton import AutomatonIndex
from repro.llm.tokenizer import count_tokens
from repro.obs import runtime as obs
from repro.retrieval import (
    DEFAULT_DIM,
    DEFAULT_PROBES,
    RETRIEVAL_SCHEMA_VERSION,
    EmbeddingIndex,
    embed,
)
from repro.sqlkit.abstraction import abstract_tokens
from repro.sqlkit.hardness import classify_hardness
from repro.sqlkit.skeleton import skeleton_tokens
from repro.store.format import (
    FORMAT_VERSION,
    CorruptStoreError,
    StaleStoreError,
    StoreVersionError,
    read_manifest,
    read_store,
    write_store,
)
from repro.store.hashing import (
    EMPTY_POOL_HASH,
    config_digest,
    extend_pool_hash,
    pool_hash,
)

#: Version of the skeletonization/abstraction scheme baked into stored
#: sequences.  Bump whenever :func:`repro.sqlkit.skeleton.skeleton_tokens`
#: or :func:`repro.sqlkit.abstraction.abstract_tokens` change behaviour —
#: stores from an older scheme are then stale by construction.
SKELETON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DemoRecord:
    """One demonstration's precomputed artifacts.

    ``hardness`` and ``token_cost`` ride along so downstream consumers
    (budgeted prompting, hardness-bucketed reporting) never re-derive
    them from raw SQL.
    """

    sql: str
    skeleton: tuple
    hardness: str
    token_cost: int

    def as_row(self) -> list:
        """Compact JSON row form: ``[sql, [tokens...], hardness, cost]``."""
        return [self.sql, list(self.skeleton), self.hardness, self.token_cost]

    @staticmethod
    def from_row(row: list) -> "DemoRecord":
        """Reconstruct from :meth:`as_row` output."""
        sql, tokens, hardness, cost = row
        return DemoRecord(
            sql=sql, skeleton=tuple(tokens), hardness=hardness, token_cost=cost
        )


@dataclass
class StoreManifest:
    """Identity and provenance of one persisted store.

    ``retrieval`` is ``None`` for stores built without an embedding
    index (and for every v1 container); otherwise it is the block
    ``{"version", "dim", "probes", "questions_hash", "count"}``
    documented in docs/retrieval.md.
    """

    pool_hash: str
    pool_size: int
    build_config: dict = field(default_factory=dict)
    config_hash: str = ""
    schema_version: int = SKELETON_SCHEMA_VERSION
    format_version: int = FORMAT_VERSION
    state_counts: dict = field(default_factory=dict)  # level(str) -> count
    retrieval: Optional[dict] = None

    def __post_init__(self):
        if not self.config_hash:
            self.config_hash = config_digest(self.build_config)

    def as_dict(self) -> dict:
        """JSON form written into the container header."""
        data = {
            "format_version": self.format_version,
            "schema_version": self.schema_version,
            "pool_hash": self.pool_hash,
            "pool_size": self.pool_size,
            "build_config": dict(self.build_config),
            "config_hash": self.config_hash,
            "state_counts": {str(k): v for k, v in self.state_counts.items()},
        }
        if self.retrieval is not None:
            data["retrieval"] = dict(self.retrieval)
        return data

    @staticmethod
    def from_dict(data: dict) -> "StoreManifest":
        """Reconstruct from :meth:`as_dict` output."""
        retrieval = data.get("retrieval")
        return StoreManifest(
            pool_hash=data["pool_hash"],
            pool_size=data["pool_size"],
            build_config=dict(data.get("build_config", {})),
            config_hash=data.get("config_hash", ""),
            schema_version=data.get("schema_version", 0),
            format_version=data.get("format_version", 0),
            state_counts=dict(data.get("state_counts", {})),
            retrieval=dict(retrieval) if retrieval is not None else None,
        )


def _record_for(sql: str) -> DemoRecord:
    tokens = tuple(skeleton_tokens(sql))
    return DemoRecord(
        sql=sql,
        skeleton=tokens,
        hardness=str(classify_hardness(sql)),
        token_cost=count_tokens(sql),
    )


@dataclass
class DemoStore:
    """An indexed demonstration pool with a persistent on-disk form.

    ``retrieval``/``questions`` are populated only when the store was
    built with the pool's NL questions (``repro index build
    --with-embeddings``); they carry the embedding index the pipeline's
    retrieval pre-filter queries (docs/retrieval.md).
    """

    manifest: StoreManifest
    index: AutomatonIndex
    demos: list = field(default_factory=list)  # list[DemoRecord]
    path: Optional[Path] = None
    retrieval: Optional[EmbeddingIndex] = None
    questions: Optional[list] = None  # list[str], parallel to demos

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build(
        demo_sqls,
        build_config: Optional[dict] = None,
        questions=None,
        retrieval_config: Optional[dict] = None,
    ) -> "DemoStore":
        """Index a pool from raw SQL — the offline/cold build.

        Each demonstration is parsed exactly once; its detail skeleton,
        hardness class, and token cost are precomputed here so neither
        the warm load nor any later consumer re-parses the pool.

        :param demo_sqls: gold SQL strings in pool order.
        :param build_config: free-form dict folded into the manifest
            identity (e.g. the abstraction settings a deployment pins).
        :param questions: the pool's NL questions, parallel to
            ``demo_sqls``; when given, an embedding index is built and
            persisted alongside the automaton.
        :param retrieval_config: ``{"dim", "probes"}`` overrides for
            the embedding index (defaults otherwise); ignored without
            ``questions``.
        :return: the built, not-yet-saved store.
        """
        started = time.perf_counter()
        with obs.span("index.build"):
            demos = [_record_for(sql) for sql in demo_sqls]
            index = AutomatonIndex.from_skeletons(d.skeleton for d in demos)
            manifest = StoreManifest(
                pool_hash=pool_hash(d.sql for d in demos),
                pool_size=len(demos),
                build_config=dict(build_config or {}),
                state_counts=index.end_state_counts(),
            )
            store = DemoStore(manifest=manifest, index=index, demos=demos)
            if questions is not None:
                questions = [str(q) for q in questions]
                if len(questions) != len(demos):
                    raise ValueError(
                        f"{len(questions)} questions for {len(demos)} "
                        f"demonstrations; the lists must be parallel"
                    )
                knobs = dict(retrieval_config or {})
                retrieval = EmbeddingIndex(
                    dim=int(knobs.get("dim", DEFAULT_DIM)),
                    probes=int(knobs.get("probes", DEFAULT_PROBES)),
                )
                for question, record in zip(questions, demos):
                    retrieval.add(question, record.skeleton)
                store.retrieval = retrieval
                store.questions = questions
                manifest.retrieval = {
                    "version": RETRIEVAL_SCHEMA_VERSION,
                    "dim": retrieval.dim,
                    "probes": retrieval.probes,
                    "questions_hash": pool_hash(questions),
                    "count": len(retrieval),
                }
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.count("index.builds")
        obs.observe("index.build_ms", elapsed_ms)
        _publish_state_gauges(manifest)
        return store

    def add(self, sql: str, question: Optional[str] = None) -> int:
        """Incrementally append one demonstration — equals a full rebuild.

        Parses only the new SQL, feeds all four level automatons, and
        extends the manifest's chained pool hash in O(1).  When the
        store carries an embedding index, the demonstration's question
        is embedded and the manifest's chained questions hash extends
        the same way.  The in-memory result (and a subsequent
        :meth:`save`) is identical to rebuilding the store from the
        extended pool.

        :param sql: the appended demonstration's gold SQL.
        :param question: its NL question — required when the store has
            an embedding index, ignored otherwise.
        :return: the new demonstration's pool index.
        """
        if self.retrieval is not None and question is None:
            raise ValueError(
                "store carries an embedding index; add() needs the "
                "demonstration's question to keep incremental parity"
            )
        record = _record_for(sql)
        demo_index = len(self.demos)
        self.demos.append(record)
        for lvl in (1, 2, 3, 4):
            self.index.levels[lvl].add(
                abstract_tokens(list(record.skeleton), lvl), demo_index
            )
        self.manifest.pool_hash = extend_pool_hash(
            self.manifest.pool_hash, sql
        )
        self.manifest.pool_size = len(self.demos)
        self.manifest.state_counts = self.index.end_state_counts()
        if self.retrieval is not None:
            question = str(question)
            self.retrieval.add(question, record.skeleton)
            self.questions.append(question)
            block = self.manifest.retrieval
            block["questions_hash"] = extend_pool_hash(
                block["questions_hash"], question
            )
            block["count"] = len(self.retrieval)
        return demo_index

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> Path:
        """Serialize to the single-file container; returns the path."""
        path = Path(path)
        payload = {"demos": [d.as_row() for d in self.demos]}
        if self.retrieval is not None:
            payload["retrieval"] = dict(
                self.retrieval.as_payload(), questions=list(self.questions)
            )
        write_store(path, self.manifest.as_dict(), payload)
        self.path = path
        return path

    @staticmethod
    def load(path) -> "DemoStore":
        """Load a persisted store — the warm path, no SQL parsing.

        The four level automatons are reconstructed from the stored
        detail skeletons (token-list abstraction and trie insertion
        only), so loading is independent of SQL text complexity.

        :param path: a file written by :meth:`save`.
        :return: the loaded store.
        :raises CorruptStoreError: truncated/garbled file or bad checksum.
        :raises StoreVersionError: incompatible container or skeleton
            schema version.
        """
        started = time.perf_counter()
        with obs.span("index.load", path=str(path)):
            manifest_dict, payload = read_store(path)
            manifest = StoreManifest.from_dict(manifest_dict)
            if manifest.schema_version != SKELETON_SCHEMA_VERSION:
                raise StoreVersionError(
                    f"store skeleton schema v{manifest.schema_version}; "
                    f"this build uses v{SKELETON_SCHEMA_VERSION}"
                )
            demos = [DemoRecord.from_row(row) for row in payload["demos"]]
            if len(demos) != manifest.pool_size:
                raise CorruptStoreError(
                    f"manifest says {manifest.pool_size} demos, payload "
                    f"has {len(demos)}"
                )
            index = AutomatonIndex.from_skeletons(d.skeleton for d in demos)
            store = DemoStore(
                manifest=manifest, index=index, demos=demos, path=Path(path)
            )
            if manifest.retrieval is not None:
                store.retrieval, store.questions = _load_retrieval(
                    manifest, payload
                )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.count("index.loads")
        obs.observe("index.load_ms", elapsed_ms)
        _publish_state_gauges(manifest)
        return store

    # -- warm start ------------------------------------------------------------

    @staticmethod
    def open(
        path,
        demo_sqls,
        build_config: Optional[dict] = None,
        offline: bool = False,
        questions=None,
        retrieval_config: Optional[dict] = None,
    ) -> "DemoStore":
        """Open a store for a live pool, with staleness detection.

        The decision table:

        * file missing → build from ``demo_sqls`` and save (offline
          mode raises :exc:`StaleStoreError` instead);
        * manifest pool-hash/config/schema mismatch, or a corrupt file
          → rebuild and overwrite (offline mode raises);
        * ``questions`` provided but the store has no retrieval
          section, or its questions hash / embedding schema version /
          dim / probes diverge from what the caller needs → rebuild
          with embeddings (offline mode raises);
        * manifest matches → load and reuse (``index.cache_hit``).
          A store *with* a retrieval section opened without
          ``questions`` still loads — the extra section is inert.

        :param path: where the store lives (created when absent).
        :param demo_sqls: the live pool the index must correspond to.
        :param build_config: identity-bearing build settings.
        :param offline: strict mode — never build, error on any
            mismatch; for deployments where index builds are a
            controlled offline step.
        :param questions: the live pool's NL questions, parallel to
            ``demo_sqls``; presence means "this caller needs the
            embedding index".
        :param retrieval_config: ``{"dim", "probes"}`` the embedding
            index must have been built with.
        :return: a fresh store for exactly ``demo_sqls``.
        """
        path = Path(path)
        demo_sqls = list(demo_sqls)
        expected_hash = pool_hash(demo_sqls)
        expected_config = config_digest(dict(build_config or {}))
        if questions is not None:
            questions = [str(q) for q in questions]

        def _rebuild(reason: str) -> "DemoStore":
            if offline:
                raise StaleStoreError(
                    f"offline index mode: store at {path} is unusable "
                    f"({reason}) and rebuilds are disabled"
                )
            obs.count("index.rebuilds")
            obs.event("index.rebuild", reason=reason, path=str(path))
            store = DemoStore.build(
                demo_sqls,
                build_config=build_config,
                questions=questions,
                retrieval_config=retrieval_config,
            )
            store.save(path)
            return store

        if not path.exists():
            return _rebuild("store file missing")
        try:
            manifest = StoreManifest.from_dict(read_manifest(path))
        except (CorruptStoreError, StoreVersionError) as exc:
            return _rebuild(f"unreadable manifest: {exc}")
        if manifest.schema_version != SKELETON_SCHEMA_VERSION:
            return _rebuild(
                f"skeleton schema v{manifest.schema_version} != "
                f"v{SKELETON_SCHEMA_VERSION}"
            )
        if manifest.pool_hash != expected_hash:
            return _rebuild("pool content hash mismatch")
        if manifest.config_hash != expected_config:
            return _rebuild("build config mismatch")
        if questions is not None:
            reason = _retrieval_staleness(
                manifest.retrieval, questions, retrieval_config
            )
            if reason is not None:
                return _rebuild(reason)
        try:
            store = DemoStore.load(path)
        except (CorruptStoreError, StoreVersionError) as exc:
            return _rebuild(f"corrupt payload: {exc}")
        obs.count("index.cache_hit")
        return store

    # -- verification ----------------------------------------------------------

    def verify_against(self, demo_sqls, questions=None) -> list:
        """Mismatches between this store and a live pool (empty = fresh).

        :param demo_sqls: the live pool's gold SQL strings.
        :param questions: the live pool's NL questions; when given, the
            retrieval section's presence and questions hash are checked
            too.
        """
        problems = []
        live = list(demo_sqls)
        expected = pool_hash(live)
        if self.manifest.pool_hash != expected:
            problems.append(
                f"pool hash mismatch: store {self.manifest.pool_hash}, "
                f"live pool {expected}"
            )
        if self.manifest.pool_size != len(live):
            problems.append(
                f"pool size mismatch: store {self.manifest.pool_size}, "
                f"live pool {len(live)}"
            )
        if questions is not None:
            reason = _retrieval_staleness(
                self.manifest.retrieval, [str(q) for q in questions], None
            )
            if reason is not None:
                problems.append(reason)
        return problems

    def self_check(self, deep: bool = False) -> list:
        """Internal-consistency problems (empty = healthy).

        Always recomputes the chained pool hash from the embedded SQL
        and the per-level state counts, plus — when a retrieval section
        is present — its count and chained questions hash.
        ``deep=True`` additionally re-parses every embedded SQL and
        compares the stored skeletons against a fresh
        :func:`skeleton_tokens` run, and re-embeds every stored
        question against the persisted vectors — the full schema-drift
        check.
        """
        problems = []
        recomputed = EMPTY_POOL_HASH
        for record in self.demos:
            recomputed = extend_pool_hash(recomputed, record.sql)
        if recomputed != self.manifest.pool_hash:
            problems.append(
                f"embedded SQL does not reproduce the manifest pool hash "
                f"({recomputed} != {self.manifest.pool_hash})"
            )
        counts = {
            str(k): v for k, v in self.index.end_state_counts().items()
        }
        manifest_counts = {
            str(k): v for k, v in self.manifest.state_counts.items()
        }
        if counts != manifest_counts:
            problems.append(
                f"state counts diverge: index {counts}, "
                f"manifest {manifest_counts}"
            )
        if self.retrieval is not None:
            block = self.manifest.retrieval or {}
            if len(self.retrieval) != len(self.demos):
                problems.append(
                    f"embedding index holds {len(self.retrieval)} vectors "
                    f"for {len(self.demos)} demonstrations"
                )
            if block.get("count") != len(self.retrieval):
                problems.append(
                    f"manifest retrieval count {block.get('count')} != "
                    f"index size {len(self.retrieval)}"
                )
            if block.get("questions_hash") != pool_hash(self.questions or []):
                problems.append(
                    "embedded questions do not reproduce the manifest "
                    "questions hash"
                )
        if deep:
            for i, record in enumerate(self.demos):
                fresh = tuple(skeleton_tokens(record.sql))
                if fresh != record.skeleton:
                    problems.append(
                        f"demo {i}: stored skeleton diverges from the "
                        f"current skeletonizer (schema drift?)"
                    )
            if self.retrieval is not None:
                for i, (question, record) in enumerate(
                    zip(self.questions or [], self.demos)
                ):
                    fresh_vec = embed(
                        question, record.skeleton, dim=self.retrieval.dim
                    )
                    if fresh_vec != self.retrieval.vector(i):
                        problems.append(
                            f"demo {i}: stored embedding diverges from "
                            f"the current embedder (schema drift?)"
                        )
        return problems


def _load_retrieval(manifest: StoreManifest, payload: dict) -> tuple:
    """Decode the ``retrieval`` payload section against its manifest block.

    :return: ``(EmbeddingIndex, questions)``.
    :raises CorruptStoreError: section missing or internally inconsistent.
    :raises StoreVersionError: embedding schema version mismatch.
    """
    block = manifest.retrieval
    if block.get("version") != RETRIEVAL_SCHEMA_VERSION:
        raise StoreVersionError(
            f"store embedding schema v{block.get('version')!r}; "
            f"this build uses v{RETRIEVAL_SCHEMA_VERSION}"
        )
    section = payload.get("retrieval")
    if section is None:
        raise CorruptStoreError(
            "manifest announces a retrieval section the payload lacks"
        )
    try:
        retrieval = EmbeddingIndex.from_payload(section)
        questions = [str(q) for q in section["questions"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptStoreError(
            f"retrieval section does not decode: {exc!r}"
        ) from exc
    if len(retrieval) != block.get("count") or len(questions) != len(
        retrieval
    ):
        raise CorruptStoreError(
            f"retrieval section size mismatch: manifest count "
            f"{block.get('count')}, {len(retrieval)} vectors, "
            f"{len(questions)} questions"
        )
    if len(retrieval) != manifest.pool_size:
        raise CorruptStoreError(
            f"retrieval section covers {len(retrieval)} demos, "
            f"pool has {manifest.pool_size}"
        )
    return retrieval, questions


def _retrieval_staleness(
    block: Optional[dict], questions: list, retrieval_config: Optional[dict]
) -> Optional[str]:
    """Why a store's retrieval section cannot serve a live pool.

    :param block: the manifest's ``retrieval`` block (``None`` when
        the store has no embedding index).
    :param questions: the live pool's NL questions.
    :param retrieval_config: required ``{"dim", "probes"}``, or
        ``None`` to accept whatever the store was built with.
    :return: a human-readable staleness reason, or ``None`` when the
        section is usable.
    """
    if block is None:
        return "retrieval section missing"
    if block.get("version") != RETRIEVAL_SCHEMA_VERSION:
        return (
            f"embedding schema v{block.get('version')!r} != "
            f"v{RETRIEVAL_SCHEMA_VERSION}"
        )
    if block.get("questions_hash") != pool_hash(questions):
        return "questions content hash mismatch"
    knobs = dict(retrieval_config or {})
    if "dim" in knobs and block.get("dim") != int(knobs["dim"]):
        return (
            f"embedding dim {block.get('dim')} != requested {knobs['dim']}"
        )
    if "probes" in knobs and block.get("probes") != int(knobs["probes"]):
        return (
            f"probe count {block.get('probes')} != requested "
            f"{knobs['probes']}"
        )
    return None


def _publish_state_gauges(manifest: StoreManifest) -> None:
    for level, states in sorted(manifest.state_counts.items()):
        obs.gauge("index.states", states, level=str(level))
