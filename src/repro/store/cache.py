"""Process-wide sharing of loaded demonstration stores.

Workers (thread pools, repeated ``fit`` calls in one process, benchmark
zoo construction) must not each pay the load cost of the same store.
:func:`shared_store` keeps one read-only :class:`~repro.store.store.DemoStore`
per ``(path, pool identity)`` behind a lock: the first caller opens (or
builds) it, everyone after gets the same object back and counts an
``index.cache_hit``.

Sharing is safe because nothing mutates a store after :func:`shared_store`
hands it out — the automaton is only read during selection, and
incremental :meth:`~repro.store.store.DemoStore.add` is an offline
authoring operation, not a serving-path one.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional

from repro.obs import runtime as obs
from repro.store.hashing import config_digest, pool_hash
from repro.store.store import DemoStore

_lock = threading.Lock()
_stores: dict = {}  # (resolved path, pool_hash, config_hash) -> DemoStore


def shared_store(
    path,
    demo_sqls,
    build_config: Optional[dict] = None,
    offline: bool = False,
    questions=None,
    retrieval_config: Optional[dict] = None,
) -> DemoStore:
    """One shared store per (path, pool) for the whole process.

    The identity key includes the pool's content hash, the build config
    digest, and — when embeddings are requested — the questions hash
    and retrieval knobs, so a changed pool at the same path is a
    different entry — never a silently stale hit.  A retrieval-needing
    caller never receives a cached store without an embedding index
    (and vice versa): the key's retrieval component differs.

    :param path: on-disk location of the store.
    :param demo_sqls: the live demonstration pool.
    :param build_config: identity-bearing build settings.
    :param offline: strict mode, forwarded to :meth:`DemoStore.open`.
    :param questions: NL questions parallel to ``demo_sqls``; presence
        requests the embedding index (see docs/retrieval.md).
    :param retrieval_config: ``{"dim", "probes"}`` the embedding index
        must match, forwarded to :meth:`DemoStore.open`.
    :return: the shared, read-only store instance.
    """
    demo_sqls = list(demo_sqls)
    if questions is not None:
        questions = [str(q) for q in questions]
        retrieval_key = (
            pool_hash(questions),
            config_digest(dict(retrieval_config or {})),
        )
    else:
        retrieval_key = None
    key = (
        str(Path(path).resolve()),
        pool_hash(demo_sqls),
        config_digest(dict(build_config or {})),
        retrieval_key,
    )
    with _lock:
        cached = _stores.get(key)
        if cached is not None:
            obs.count("index.cache_hit")
            return cached
        store = DemoStore.open(
            path,
            demo_sqls,
            build_config=build_config,
            offline=offline,
            questions=questions,
            retrieval_config=retrieval_config,
        )
        _stores[key] = store
        return store


def clear_shared_stores() -> None:
    """Drop every cached store (tests and long-lived tools)."""
    with _lock:
        _stores.clear()
